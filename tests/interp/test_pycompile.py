"""Golden equivalence of the compiled tier and the slow path.

The compile-to-Python tier must be an *observationally invisible*
optimization, exactly like the decoded fast path: identical outputs,
identical cycle/load/store/copy counters (total and per-function), and
identical fault annotations — with the fault pc always reported in
original-code coordinates, even though the generated Python executes
label-stripped code and only reconciles counters at segment boundaries.
"""

import os

import pytest

from repro.bench.suite import all_programs, program
from repro.compiler import compile_source
from repro.interp.machine import (
    FunctionImage,
    Machine,
    ProgramImage,
    Tracer,
)
from repro.interp.memory import MachineFault
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, Symbol, vreg
from repro.resilience import faults
from repro.resilience.corpus import load_corpus
from repro.testing import random_source


def execute(image, tier, entry="main", run_args=(), max_cycles=5_000_000):
    """Run one tier; returns (stats, fault-or-None)."""
    machine = Machine(image, max_cycles=max_cycles, tier=tier)
    fault = None
    try:
        machine.run(entry, run_args)
    except MachineFault as err:
        fault = (err.message, err.function, err.pc, err.cycles)
    return machine.stats, fault


def assert_tiers_agree(image, entry="main", run_args=(), max_cycles=5_000_000):
    """Slow vs compiled on the same image; returns the (shared) fault."""
    slow_stats, slow_fault = execute(
        image, "slow", entry=entry, run_args=run_args, max_cycles=max_cycles
    )
    comp_stats, comp_fault = execute(
        image, "compiled", entry=entry, run_args=run_args, max_cycles=max_cycles
    )
    assert comp_fault == slow_fault
    assert comp_stats.output == slow_stats.output
    assert comp_stats.total == slow_stats.total
    assert comp_stats.per_function == slow_stats.per_function
    assert comp_stats.interp_tier == "compiled"
    assert slow_stats.interp_tier == "slow"
    return slow_fault


def allocated_image(prog, allocator, k):
    from repro.cli import _allocate_image

    return _allocate_image(prog, allocator, k)


class TestBenchEquivalence:
    @pytest.mark.parametrize("bench", all_programs(), ids=lambda b: b.name)
    def test_reference_image_equivalence(self, bench):
        image = compile_source(
            bench.source(), filename=bench.filename
        ).reference_image()
        fault = assert_tiers_agree(image, max_cycles=bench.max_cycles)
        assert fault is None


class TestFuzzEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_fuzz_seed_equivalence(self, seed):
        # Mirrors the CI fuzz configuration (25 seeds, size="small",
        # 3M-cycle budget) on the unallocated reference image.
        source = random_source(seed, "small")
        image = compile_source(source).reference_image()
        assert_tiers_agree(image, max_cycles=3_000_000)


def _corpus_entries():
    corpus = load_corpus(
        os.path.join(os.path.dirname(__file__), "..", "corpus")
    )
    return corpus, corpus.entries


class TestCorpusEquivalence:
    corpus, entries = _corpus_entries()

    @pytest.mark.parametrize(
        "entry", entries, ids=lambda entry: entry.file
    )
    def test_corpus_program_equivalence(self, entry):
        with open(entry.path(self.corpus.directory)) as handle:
            source = handle.read()
        image = compile_source(source).reference_image()
        assert_tiers_agree(image, max_cycles=3_000_000)


class TestAllocatedEquivalence:
    """Allocated (finite register file, spill code) images run through
    the same generated-code path — spill slots become Python locals."""

    @pytest.mark.parametrize("name", ["perm", "sieve", "queens"])
    @pytest.mark.parametrize("allocator", ["gra", "rap"])
    @pytest.mark.parametrize("k", [3, 8])
    def test_allocated_equivalence(self, name, allocator, k):
        bench = program(name)
        prog = compile_source(bench.source(), filename=bench.filename)
        image = allocated_image(prog, allocator, k)
        fault = assert_tiers_agree(image, max_cycles=bench.max_cycles)
        assert fault is None


def single_image(code, globals_=(), params=(), extra=None):
    functions = {"f": FunctionImage("f", code, list(params))}
    if extra:
        functions.update(extra)
    return ProgramImage(list(globals_), functions)


class TestFaultEquivalence:
    """Hand-built images hitting every fault class on both tiers.

    Expected tuples are copied from ``test_decode.py`` — the compiled
    tier must agree with the slow path on the same coordinates."""

    def test_uninitialized_register(self):
        image = single_image(
            [
                iloc.loadi(1, vreg(0)),
                iloc.binary(Op.ADD, vreg(0), vreg(9), vreg(1)),
                Instr(Op.RET, srcs=[vreg(1)]),
            ]
        )
        fault = assert_tiers_agree(image, entry="f")
        assert fault == ("read of uninitialized register %v9 in f", "f", 1, 2)

    @pytest.mark.parametrize("op", [Op.DIV, Op.MOD])
    def test_division_by_zero(self, op):
        image = single_image(
            [
                iloc.loadi(7, vreg(0)),
                iloc.loadi(0, vreg(1)),
                iloc.binary(op, vreg(0), vreg(1), vreg(2)),
                Instr(Op.RET, srcs=[vreg(2)]),
            ]
        )
        fault = assert_tiers_agree(image, entry="f")
        assert fault is not None
        assert "by zero" in fault[0]
        assert fault[1:] == ("f", 2, 3)

    def test_cycle_budget_exceeded(self):
        image = single_image(
            [
                iloc.label("spin"),
                iloc.jmp("spin"),
            ]
        )
        fault = assert_tiers_agree(image, entry="f", max_cycles=1000)
        assert fault == ("cycle budget exceeded in f", "f", 1, 1001)

    def test_unknown_function(self):
        image = single_image([Instr(Op.CALL, callee="nope"), Instr(Op.RET)])
        fault = assert_tiers_agree(image, entry="f")
        assert fault is not None
        assert "nope" in fault[0]
        assert fault[1:] == ("f", 0, 1)

    def test_too_few_queued_params(self):
        callee = FunctionImage("g", [Instr(Op.RET)], ["g.%arg0", "g.%arg1"])
        image = single_image(
            [
                iloc.loadi(1, vreg(0)),
                Instr(Op.PARAM, srcs=[vreg(0)]),
                Instr(Op.CALL, callee="g"),
                Instr(Op.RET),
            ],
            extra={"g": callee},
        )
        fault = assert_tiers_agree(image, entry="f")
        assert fault == ("call to g with too few queued params", "f", 2, 3)

    def test_bad_heap_address(self):
        image = single_image(
            [
                iloc.loadi(-1, vreg(0)),
                iloc.load(vreg(0), vreg(1)),
                Instr(Op.RET, srcs=[vreg(1)]),
            ]
        )
        fault = assert_tiers_agree(image, entry="f")
        assert fault is not None
        assert fault[1:] == ("f", 1, 2)

    def test_non_integer_heap_address(self):
        image = single_image(
            [
                iloc.loadi(1.5, vreg(0)),
                iloc.load(vreg(0), vreg(1)),
                Instr(Op.RET, srcs=[vreg(1)]),
            ]
        )
        fault = assert_tiers_agree(image, entry="f")
        assert fault is not None
        assert fault[1:] == ("f", 1, 2)

    def test_unknown_global_array(self):
        image = single_image(
            [
                Instr(Op.LOADA, addr=Symbol("ghost", "global"), dst=vreg(0)),
                Instr(Op.RET, srcs=[vreg(0)]),
            ]
        )
        fault = assert_tiers_agree(image, entry="f")
        assert fault == ("unknown global array 'ghost'", "f", 0, 1)

    def test_fault_pc_is_original_coordinates(self):
        image = single_image(
            [
                iloc.loadi(1, vreg(0)),
                iloc.label("a"),
                iloc.label("b"),
                iloc.binary(Op.ADD, vreg(0), vreg(9), vreg(1)),
                Instr(Op.RET, srcs=[vreg(1)]),
            ]
        )
        fault = assert_tiers_agree(image, entry="f")
        assert fault == ("read of uninitialized register %v9 in f", "f", 3, 2)

    @pytest.mark.parametrize(
        "op,first",
        [
            (Op.AND, 0),  # falsy left: right operand never read
            (Op.OR, 1),   # truthy left: right operand never read
        ],
    )
    def test_short_circuit_skips_uninitialized_operand(self, op, first):
        image = single_image(
            [
                iloc.loadi(first, vreg(0)),
                iloc.binary(op, vreg(0), vreg(9), vreg(1)),
                Instr(Op.RET, srcs=[vreg(1)]),
            ]
        )
        fault = assert_tiers_agree(image, entry="f")
        assert fault is None


BUDGET_SOURCE = """
int work(int n) {
    int arr[8];
    int i; int s;
    s = 0;
    for (i = 0; i < 8; i = i + 1) { arr[i] = i * n; }
    for (i = 0; i < 8; i = i + 1) { s = s + arr[i]; }
    return s;
}
void main() {
    int t; int j;
    t = 0;
    for (j = 0; j < 1000; j = j + 1) { t = t + work(j); }
    print(t);
}
"""


class TestBudgetBail:
    """Mid-segment budget exhaustion bails to the fast path, which must
    land on exactly the slow path's fault coordinates and counters."""

    @pytest.mark.parametrize("budget", [500, 5_000, 50_000])
    def test_budget_fault_equivalence_reference(self, budget):
        image = compile_source(BUDGET_SOURCE).reference_image()
        fault = assert_tiers_agree(image, max_cycles=budget)
        assert fault is not None
        assert "cycle budget exceeded" in fault[0]

    @pytest.mark.parametrize("budget", [500, 5_000])
    def test_budget_fault_equivalence_spilled(self, budget):
        # rap at k=3 spills: the bail path must materialize the spill
        # slots it promoted to Python locals before the fast path resumes.
        prog = compile_source(BUDGET_SOURCE)
        image = allocated_image(prog, "rap", 3)
        fault = assert_tiers_agree(image, max_cycles=budget)
        assert fault is not None
        assert "cycle budget exceeded" in fault[0]


class TestTierSelection:
    """Tier resolution, forcing precedence, and demotion to the slow
    path for observation mechanisms — without translating anything."""

    def source_image(self):
        return compile_source(
            "void main() { int i; int s; s = 0;"
            " for (i = 0; i < 10; i = i + 1) { s = s + i; }"
            " print(s); }"
        ).reference_image()

    def test_compiled_is_the_default_tier(self):
        machine = Machine(self.source_image())
        assert machine.tier == "compiled"
        assert machine.interp_tier() == "compiled"

    def test_env_selects_tier(self, monkeypatch):
        for tier in ("slow", "fast", "compiled"):
            monkeypatch.setenv("REPRO_INTERP", tier)
            assert Machine(self.source_image()).tier == tier

    def test_explicit_tier_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_INTERP", "slow")
        machine = Machine(self.source_image(), tier="compiled")
        assert machine.tier == "compiled"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            Machine(self.source_image(), tier="turbo")

    def test_compiled_run_populates_caches_and_stats(self):
        image = self.source_image()
        machine = Machine(image, tier="compiled")
        machine.run("main")
        assert machine.stats.output == [45]
        assert machine.stats.interp_tier == "compiled"
        assert image.functions["main"]._compiled is not None
        assert machine.pycompile_seconds > 0.0

    def test_tracer_demotes_to_slow(self):
        image = self.source_image()
        tracer = Tracer()
        machine = Machine(image, tier="compiled", tracer=tracer)
        assert machine.interp_tier() == "slow"
        machine.run("main")
        assert machine.stats.output == [45]
        assert machine.stats.interp_tier == "slow"
        assert tracer.events  # the slow path actually recorded
        assert image.functions["main"]._compiled is None
        assert image.functions["main"]._decoded is None

    def test_force_slow_flag_beats_compiled_default(self):
        image = self.source_image()
        machine = Machine(image, force_slow=True)
        assert machine.tier == "slow"
        machine.run("main")
        assert image.functions["main"]._compiled is None

    def test_armed_fault_plan_demotes_compiled_env(self, monkeypatch):
        """The ISSUE regression: REPRO_INTERP=compiled with an armed
        fault plan must run the slow path with unchanged annotations."""
        monkeypatch.setenv("REPRO_INTERP", "compiled")
        image = self.source_image()
        with faults.injected(faults.FaultSpec("rap.region.raise", "nope")):
            machine = Machine(image)
            assert machine.tier == "compiled"  # requested...
            assert machine.interp_tier() == "slow"  # ...but demoted
            machine.run("main")
        assert machine.stats.output == [45]
        assert machine.stats.interp_tier == "slow"
        # Nothing was translated or decoded behind the plan's back.
        assert image.functions["main"]._compiled is None
        assert image.functions["main"]._decoded is None
        # Annotations identical to an explicitly slow run.
        slow_stats, _ = execute(self.source_image(), "slow")
        assert machine.stats.total == slow_stats.total
        assert machine.stats.per_function == slow_stats.per_function

    def test_plan_disarm_restores_compiled_between_runs(self):
        image = self.source_image()
        machine = Machine(image, tier="compiled")
        with faults.injected(faults.FaultSpec("rap.region.raise", "nope")):
            machine.run("main")
            assert machine.stats.interp_tier == "slow"
        machine.stats.output.clear()
        machine.run("main")
        assert machine.stats.interp_tier == "compiled"
        assert image.functions["main"]._compiled is not None


class TestArtifactCache:
    """The content-addressed translation cache must key float and int
    immediates apart (``7.0 == 7`` and they hash alike) and share one
    artifact between structurally identical functions."""

    @staticmethod
    def _div_image(numerator):
        return single_image(
            [
                iloc.loadi(numerator, vreg(0)),
                iloc.loadi(2, vreg(1)),
                iloc.binary(Op.DIV, vreg(0), vreg(1), vreg(2)),
                Instr(Op.RET, srcs=[vreg(2)]),
            ]
        )

    def test_float_and_int_immediates_do_not_collide(self):
        int_result = Machine(self._div_image(7), tier="compiled").run("f")
        float_result = Machine(self._div_image(7.0), tier="compiled").run("f")
        assert int_result == 3
        assert float_result == 3.5
        # And in the other arrival order, with fresh images.
        float_again = Machine(self._div_image(7.0), tier="compiled").run("f")
        int_again = Machine(self._div_image(7), tier="compiled").run("f")
        assert float_again == 3.5
        assert int_again == 3

    def test_identical_functions_share_one_artifact(self):
        first = self._div_image(7)
        second = self._div_image(7)
        Machine(first, tier="compiled").run("f")
        Machine(second, tier="compiled").run("f")
        assert first.functions["f"]._compiled is not None
        assert (
            first.functions["f"]._compiled
            is second.functions["f"]._compiled
        )
