"""Deeper call-machinery tests: the argument queue under nesting, stack
discipline for local arrays, per-routine attribution under recursion."""

import pytest

from repro.compiler import compile_source
from repro.interp.machine import run_program


def run(source, **kwargs):
    return run_program(compile_source(source).reference_image(), **kwargs)


class TestArgumentQueue:
    def test_nested_multiarg_calls(self):
        # g's arguments each come from calls to h with 2 args: the queue
        # must pop exactly the callee's arity, LIFO-nested.
        source = """
        int h(int a, int b) { return a * 10 + b; }
        int g(int a, int b, int c) { return a * 10000 + b * 100 + c; }
        void main() { print(g(h(1, 2), h(3, 4), h(5, 6))); }
        """
        assert run(source).output == [12 * 10000 + 34 * 100 + 56]

    def test_call_inside_condition_and_index(self):
        source = """
        int a[8];
        int idx(int i) { return i % 8; }
        void main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { a[idx(i)] = i; }
            if (idx(11) == 3) { print(a[idx(11)]); }
        }
        """
        assert run(source).output == [3]

    def test_recursive_call_as_argument(self):
        source = """
        int add(int a, int b) { return a + b; }
        int tri(int n) {
            if (n == 0) { return 0; }
            return add(n, tri(n - 1));
        }
        void main() { print(tri(10)); }
        """
        assert run(source).output == [55]


class TestLocalArrayFrames:
    def test_recursive_frames_do_not_alias(self):
        source = """
        int depth_sum(int n) {
            int buf[4];
            int i;
            for (i = 0; i < 4; i = i + 1) { buf[i] = n * 10 + i; }
            if (n > 0) {
                i = depth_sum(n - 1);
            }
            /* our frame must be intact after the recursive call */
            return buf[0] + buf[3];
        }
        void main() { print(depth_sum(3)); }
        """
        # buf[0]=30, buf[3]=33 at the top level.
        assert run(source).output == [63]

    def test_stack_released_between_siblings(self):
        source = """
        int probe() {
            int buf[16];
            buf[0] = 7;
            return buf[0];
        }
        void main() {
            int i; int s; s = 0;
            for (i = 0; i < 100; i = i + 1) { s = s + probe(); }
            print(s);
        }
        """
        stats = run(source)
        assert stats.output == [700]


class TestAttribution:
    def test_recursive_function_gets_all_its_cycles(self):
        source = """
        int f(int n) { if (n == 0) { return 0; } return f(n - 1) + 1; }
        void main() { print(f(50)); }
        """
        stats = run(source)
        assert stats.output == [50]
        assert stats.per_function["f"].cycles > stats.per_function["main"].cycles

    def test_total_is_sum_of_functions(self):
        source = """
        int f(int n) { return n * 2; }
        void main() { print(f(1) + f(2) + f(3)); }
        """
        stats = run(source)
        assert stats.total.cycles == sum(
            c.cycles for c in stats.per_function.values()
        )
