"""Tests for the execution tracer."""

from repro.compiler import compile_source
from repro.interp.machine import Machine, Tracer

SOURCE = """
int f(int n) { return n + 1; }
void main() { print(f(1) + f(2)); }
"""


def traced_machine(limit=10_000):
    prog = compile_source(SOURCE)
    tracer = Tracer(limit=limit)
    machine = Machine(prog.reference_image(), tracer=tracer)
    machine.run("main")
    return machine, tracer


def test_event_count_matches_cycles():
    machine, tracer = traced_machine()
    assert len(tracer.events) == machine.stats.total.cycles


def test_events_carry_function_names():
    _, tracer = traced_machine()
    names = {name for name, _, _ in tracer.events}
    assert names == {"main", "f"}


def test_limit_keeps_tail():
    machine, tracer = traced_machine(limit=5)
    assert len(tracer.events) == 5
    # The tail ends with main's final instructions (print/ret).
    assert tracer.events[-1][0] == "main"


def test_tail_formatting():
    _, tracer = traced_machine()
    lines = tracer.tail(3)
    assert len(lines) == 3
    assert all("@" in line and ":" in line for line in lines)


def test_no_tracer_no_overhead_difference_in_behaviour():
    prog = compile_source(SOURCE)
    plain = Machine(prog.reference_image())
    plain.run("main")
    traced = Machine(prog.reference_image(), tracer=Tracer())
    traced.run("main")
    assert plain.stats.output == traced.stats.output
    assert plain.stats.total.cycles == traced.stats.total.cycles
