"""Tests for the machine memory model."""

import pytest

from repro.interp.memory import GLOBAL_BASE, MachineFault, Memory
from repro.pdg.graph import GlobalVar


def make_memory():
    return Memory(
        [
            GlobalVar("n", "int", [], 7),
            GlobalVar("x", "float", [], None),
            GlobalVar("a", "int", [10]),
            GlobalVar("m", "float", [4, 4]),
        ]
    )


class TestLayout:
    def test_arrays_get_disjoint_ranges(self):
        memory = make_memory()
        a, m = memory.array_base["a"], memory.array_base["m"]
        assert a == GLOBAL_BASE
        assert m >= a + 10

    def test_stack_above_globals(self):
        memory = make_memory()
        assert memory.stack_base > memory.array_base["m"] + 16

    def test_scalars_not_in_heap(self):
        memory = make_memory()
        assert "n" not in memory.array_base


class TestScalars:
    def test_initialized_value(self):
        assert make_memory().load_scalar("n") == 7

    def test_uninitialized_defaults_by_type(self):
        memory = make_memory()
        assert memory.load_scalar("x") == 0.0
        assert isinstance(memory.load_scalar("x"), float)

    def test_store_and_reload(self):
        memory = make_memory()
        memory.store_scalar("n", 99)
        assert memory.load_scalar("n") == 99


class TestHeap:
    def test_uninitialized_reads_zero(self):
        assert make_memory().load(GLOBAL_BASE + 3) == 0

    def test_store_load_roundtrip(self):
        memory = make_memory()
        memory.store(GLOBAL_BASE + 3, 42)
        assert memory.load(GLOBAL_BASE + 3) == 42

    def test_negative_address_faults(self):
        with pytest.raises(MachineFault):
            make_memory().load(-1)

    def test_float_address_faults(self):
        with pytest.raises(MachineFault):
            make_memory().store(1.5, 0)


class TestStack:
    def test_alloca_bumps(self):
        memory = make_memory()
        first = memory.alloca(8)
        second = memory.alloca(4)
        assert second == first + 8

    def test_release_restores(self):
        memory = make_memory()
        mark = memory.stack_top
        memory.alloca(16)
        memory.release_to(mark)
        assert memory.alloca(1) == mark
