"""Tests for the iloc interpreter."""

import pytest

from repro.compiler import compile_source, param_slots
from repro.interp.machine import (
    FunctionImage,
    Machine,
    ProgramImage,
    run_program,
)
from repro.interp.memory import MachineFault
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, Symbol, preg, vreg
from repro.pdg.graph import GlobalVar


def run_code(code, globals_=(), entry="f"):
    image = ProgramImage(list(globals_), {entry: FunctionImage(entry, code, [])})
    machine = Machine(image)
    value = machine.run(entry)
    return value, machine


def run_source(source, **kwargs):
    prog = compile_source(source)
    return run_program(prog.reference_image(), **kwargs)


class TestArithmetic:
    def test_add_mul(self):
        code = [
            iloc.loadi(6, vreg(0)),
            iloc.loadi(7, vreg(1)),
            iloc.binary(Op.MUL, vreg(0), vreg(1), vreg(2)),
            iloc.binary(Op.ADD, vreg(2), vreg(0), vreg(3)),
            Instr(Op.RET, srcs=[vreg(3)]),
        ]
        assert run_code(code)[0] == 48

    def test_int_division_truncates_toward_zero(self):
        assert run_source("void main() { print(7 / 2); }").output == [3]
        assert run_source("void main() { print(-7 / 2); }").output == [-3]
        assert run_source("void main() { print(7 / -2); }").output == [-3]

    def test_float_division(self):
        assert run_source("void main() { print(7.0 / 2); }").output == [3.5]

    def test_mod_c_semantics(self):
        assert run_source("void main() { print(7 % 3); }").output == [1]
        assert run_source("void main() { print(-7 % 3); }").output == [-1]
        assert run_source("void main() { print(7 % -3); }").output == [1]

    def test_division_by_zero_faults(self):
        with pytest.raises(MachineFault):
            run_source("void main() { int z; z = 0; print(1 / z); }")

    def test_comparisons_yield_zero_one(self):
        out = run_source(
            "void main() { print(1 < 2); print(2 < 1); print(2 <= 2);"
            " print(3 > 1); print(1 >= 2); print(2 == 2); print(2 != 2); }"
        ).output
        assert out == [1, 0, 1, 1, 0, 1, 0]

    def test_logical_ops(self):
        out = run_source(
            "void main() { print(1 && 2); print(1 && 0); print(0 || 3);"
            " print(0 || 0); print(!0); print(!5); }"
        ).output
        assert out == [1, 0, 1, 0, 1, 0]

    def test_negation(self):
        assert run_source("void main() { print(-(3 + 4)); }").output == [-7]


class TestControlFlow:
    def test_if_else(self):
        out = run_source(
            "void main() { int x; x = 5;"
            " if (x > 3) { print(1); } else { print(2); } }"
        ).output
        assert out == [1]

    def test_while_loop(self):
        out = run_source(
            "void main() { int i; int s; s = 0;"
            " for (i = 0; i < 10; i = i + 1) { s = s + i; } print(s); }"
        ).output
        assert out == [45]

    def test_zero_trip_loop(self):
        out = run_source(
            "void main() { int i; for (i = 5; i < 0; i = i + 1) { print(9); }"
            " print(i); }"
        ).output
        assert out == [5]

    def test_early_return(self):
        out = run_source(
            "int f(int x) { if (x > 0) { return 1; } return 2; }"
            "void main() { print(f(5)); print(f(-5)); }"
        ).output
        assert out == [1, 2]

    def test_fall_off_end_returns_zero(self):
        out = run_source("int f() { } void main() { print(f()); }").output
        assert out == [0]


class TestCalls:
    def test_recursion(self):
        out = run_source(
            "int fact(int n) { if (n <= 1) { return 1; }"
            " return n * fact(n - 1); } void main() { print(fact(6)); }"
        ).output
        assert out == [720]

    def test_nested_call_arguments(self):
        out = run_source(
            "int add(int a, int b) { return a + b; }"
            "void main() { print(add(add(1, 2), add(3, 4))); }"
        ).output
        assert out == [10]

    def test_register_frames_are_private(self):
        # The callee writes its registers heavily; the caller's loop
        # variable must be unaffected.
        out = run_source(
            """
            int burn(int n) { int a; int b; a = n * 2; b = a + 1; return b; }
            void main() {
                int i; int s; s = 0;
                for (i = 0; i < 3; i = i + 1) { s = s + burn(i); }
                print(s);
            }
            """
        ).output
        assert out == [9]

    def test_arity_mismatch_faults(self):
        code = [Instr(Op.CALL, callee="g"), Instr(Op.RET)]
        image = ProgramImage(
            [],
            {
                "f": FunctionImage("f", code, []),
                "g": FunctionImage("g", [Instr(Op.RET)], ["g.arg0"]),
            },
        )
        with pytest.raises(MachineFault):
            Machine(image).run("f")

    def test_unknown_function_faults(self):
        code = [Instr(Op.CALL, callee="nope"), Instr(Op.RET)]
        with pytest.raises(MachineFault):
            run_code(code)


class TestMemory:
    def test_global_scalar_init_and_update(self):
        out = run_source(
            "int g = 41; void main() { g = g + 1; print(g); }"
        ).output
        assert out == [42]

    def test_global_array_zero_initialized(self):
        out = run_source("int a[4]; void main() { print(a[3]); }").output
        assert out == [0]

    def test_array_roundtrip(self):
        out = run_source(
            "int a[8]; void main() { int i;"
            " for (i = 0; i < 8; i = i + 1) { a[i] = i * i; }"
            " print(a[7]); }"
        ).output
        assert out == [49]

    def test_two_dim_array(self):
        out = run_source(
            "int m[3][4]; void main() { m[2][3] = 5; m[0][0] = 1;"
            " print(m[2][3] + m[0][0]); }"
        ).output
        assert out == [6]

    def test_local_array_per_activation(self):
        out = run_source(
            """
            int f(int n) {
                int a[4];
                a[0] = n;
                if (n > 0) { f(n - 1); }
                return a[0];
            }
            void main() { print(f(3)); }
            """
        ).output
        assert out == [3]

    def test_array_parameter_aliases_caller_array(self):
        out = run_source(
            """
            int g[4];
            void set(int v[], int i, int value) { v[i] = value; }
            void main() { set(g, 2, 9); print(g[2]); }
            """
        ).output
        assert out == [9]

    def test_spill_slots_are_per_activation(self):
        # Direct machine-level test: recursion must not clobber slots.
        slot = Symbol("f.s")
        code_f = [
            iloc.ldm(Symbol("f.arg0"), vreg(0)),
            iloc.stm(slot, vreg(0)),
            iloc.loadi(1, vreg(1)),
            iloc.binary(Op.CMP_GT, vreg(0), vreg(1), vreg(2)),
            iloc.cbr(vreg(2), "R", "E"),
            iloc.label("R"),
            iloc.binary(Op.SUB, vreg(0), vreg(1), vreg(3)),
            Instr(Op.PARAM, srcs=[vreg(3)]),
            Instr(Op.CALL, callee="f", dst=vreg(4)),
            iloc.label("E"),
            iloc.ldm(slot, vreg(5)),
            Instr(Op.RET, srcs=[vreg(5)]),
        ]
        image = ProgramImage(
            [], {"f": FunctionImage("f", code_f, ["f.arg0"])}
        )
        machine = Machine(image)
        assert machine.run("f", [5]) == 5

    def test_uninitialized_register_faults(self):
        code = [Instr(Op.PRINT, srcs=[vreg(0)]), Instr(Op.RET)]
        with pytest.raises(MachineFault):
            run_code(code)

    def test_non_integer_address_faults(self):
        code = [
            iloc.loadi(1.5, vreg(0)),
            iloc.load(vreg(0), vreg(1)),
            Instr(Op.RET),
        ]
        with pytest.raises(MachineFault):
            run_code(code)


class TestCounters:
    def test_cycle_count_excludes_labels(self):
        code = [
            iloc.label("L"),
            iloc.loadi(1, vreg(0)),
            Instr(Op.RET, srcs=[vreg(0)]),
        ]
        _, machine = run_code(code)
        assert machine.stats.total.cycles == 2

    def test_load_store_copy_counters(self):
        stats = run_source(
            "int g; void main() { int x; x = g; g = x; print(x); }"
        )
        assert stats.total.loads >= 1
        assert stats.total.stores >= 1
        assert stats.total.copies >= 1

    def test_per_function_attribution_excludes_callees(self):
        stats = run_source(
            """
            int inner() { int i; int s; s = 0;
                for (i = 0; i < 10; i = i + 1) { s = s + 1; } return s; }
            void main() { print(inner()); }
            """
        )
        total = stats.total.cycles
        inner = stats.per_function["inner"].cycles
        main = stats.per_function["main"].cycles
        assert inner + main == total
        assert inner > main

    def test_cycle_budget_enforced(self):
        with pytest.raises(MachineFault):
            run_source(
                "void main() { int i; i = 0; while (i < 100) { i = i + 0; } }",
                max_cycles=10_000,
            )


class TestFaultContext:
    """MachineFaults carry where they happened: function, pc, cycles."""

    def test_division_fault_annotated(self):
        with pytest.raises(MachineFault) as info:
            run_source(
                """
                int f(int x) { return 10 / x; }
                void main() { print(f(2)); print(f(0)); }
                """
            )
        fault = info.value
        assert fault.function == "f"  # the innermost frame, not main
        assert fault.pc is not None and fault.pc >= 0
        assert fault.cycles is not None and fault.cycles > 0
        rendered = str(fault)
        assert "function=f" in rendered and "pc=" in rendered

    def test_cycle_budget_fault_annotated(self):
        with pytest.raises(MachineFault) as info:
            run_source(
                "void main() { int i; i = 0; while (i < 9) { i = i + 0; } }",
                max_cycles=50,
            )
        assert info.value.function == "main"
        assert info.value.cycles == 51

    def test_uninitialized_register_fault_annotated(self):
        code = [Instr(Op.PRINT, srcs=[vreg(0)]), Instr(Op.RET)]
        with pytest.raises(MachineFault) as info:
            run_code(code)
        assert info.value.pc == 0

    def test_annotate_never_overwrites(self):
        fault = MachineFault("boom", function="callee", pc=3, cycles=9)
        fault.annotate(function="caller", pc=99, cycles=100)
        assert (fault.function, fault.pc, fault.cycles) == ("callee", 3, 9)

    def test_message_without_context(self):
        assert str(MachineFault("plain")) == "plain"
