"""Tests for execution statistics containers."""

from repro.interp.stats import Counters, ExecStats


def test_counters_add():
    a = Counters(cycles=10, loads=2, stores=1, copies=3)
    b = Counters(cycles=5, loads=1, stores=1, copies=0)
    a.add(b)
    assert (a.cycles, a.loads, a.stores, a.copies) == (15, 3, 2, 3)


def test_counters_as_dict():
    c = Counters(cycles=1, loads=2, stores=3, copies=4)
    assert c.as_dict() == {"cycles": 1, "loads": 2, "stores": 3, "copies": 4}


def test_exec_stats_function_creates_on_demand():
    stats = ExecStats()
    stats.function("f").cycles += 5
    assert stats.per_function["f"].cycles == 5
    assert stats.function("f") is stats.per_function["f"]
