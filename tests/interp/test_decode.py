"""Golden equivalence of the pre-decoded fast path and the slow path.

The decoded interpreter must be an *observationally invisible*
optimization: identical outputs, identical cycle/load/store/copy
counters (total and per-function), and identical fault annotations —
with the fault pc always reported in original-code coordinates, even
though the fast path executes label-stripped code.
"""

import pytest

from repro.bench.suite import all_programs
from repro.compiler import compile_source
from repro.interp.machine import (
    FunctionImage,
    Machine,
    ProgramImage,
    Tracer,
)
from repro.interp.memory import MachineFault
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, Symbol, vreg
from repro.resilience import faults
from repro.testing import random_source


def execute(image, force_slow, entry="main", run_args=(), max_cycles=5_000_000):
    """Run one path; returns (stats, fault-or-None).

    The fast tier is pinned explicitly: with the compiled tier as the
    machine default, ``force_slow=False`` alone would no longer exercise
    the decoded handler table this file is about.
    """
    machine = Machine(
        image,
        max_cycles=max_cycles,
        tier="slow" if force_slow else "fast",
    )
    fault = None
    try:
        machine.run(entry, run_args)
    except MachineFault as err:
        fault = (err.message, err.function, err.pc, err.cycles)
    return machine.stats, fault


def assert_paths_agree(image, entry="main", run_args=(), max_cycles=5_000_000):
    slow_stats, slow_fault = execute(
        image, True, entry=entry, run_args=run_args, max_cycles=max_cycles
    )
    fast_stats, fast_fault = execute(
        image, False, entry=entry, run_args=run_args, max_cycles=max_cycles
    )
    assert fast_fault == slow_fault
    assert fast_stats.output == slow_stats.output
    assert fast_stats.total == slow_stats.total
    assert fast_stats.per_function == slow_stats.per_function
    return slow_fault


class TestBenchEquivalence:
    @pytest.mark.parametrize(
        "bench", all_programs(), ids=lambda b: b.name
    )
    def test_reference_image_equivalence(self, bench):
        image = compile_source(
            bench.source(), filename=bench.filename
        ).reference_image()
        fault = assert_paths_agree(image, max_cycles=bench.max_cycles)
        assert fault is None


class TestFuzzEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_fuzz_seed_equivalence(self, seed):
        # Mirrors the CI fuzz configuration (25 seeds, size="small",
        # 3M-cycle budget) on the unallocated reference image.
        source = random_source(seed, "small")
        image = compile_source(source).reference_image()
        assert_paths_agree(image, max_cycles=3_000_000)


def single_image(code, globals_=(), params=(), extra=None):
    functions = {"f": FunctionImage("f", code, list(params))}
    if extra:
        functions.update(extra)
    return ProgramImage(list(globals_), functions)


class TestFaultEquivalence:
    """Hand-built images hitting every fault class on both paths."""

    def test_uninitialized_register(self):
        image = single_image(
            [
                iloc.loadi(1, vreg(0)),
                iloc.binary(Op.ADD, vreg(0), vreg(9), vreg(1)),
                Instr(Op.RET, srcs=[vreg(1)]),
            ]
        )
        fault = assert_paths_agree(image, entry="f")
        assert fault == ("read of uninitialized register %v9 in f", "f", 1, 2)

    @pytest.mark.parametrize("op", [Op.DIV, Op.MOD])
    def test_division_by_zero(self, op):
        image = single_image(
            [
                iloc.loadi(7, vreg(0)),
                iloc.loadi(0, vreg(1)),
                iloc.binary(op, vreg(0), vreg(1), vreg(2)),
                Instr(Op.RET, srcs=[vreg(2)]),
            ]
        )
        fault = assert_paths_agree(image, entry="f")
        assert fault is not None
        assert "by zero" in fault[0]
        assert fault[1:] == ("f", 2, 3)

    def test_cycle_budget_exceeded(self):
        image = single_image(
            [
                iloc.label("spin"),
                iloc.jmp("spin"),
            ]
        )
        fault = assert_paths_agree(image, entry="f", max_cycles=1000)
        assert fault == ("cycle budget exceeded in f", "f", 1, 1001)

    def test_unknown_function(self):
        image = single_image([Instr(Op.CALL, callee="nope"), Instr(Op.RET)])
        fault = assert_paths_agree(image, entry="f")
        assert fault is not None
        assert "nope" in fault[0]
        assert fault[1:] == ("f", 0, 1)

    def test_too_few_queued_params(self):
        callee = FunctionImage(
            "g", [Instr(Op.RET)], ["g.%arg0", "g.%arg1"]
        )
        image = single_image(
            [
                iloc.loadi(1, vreg(0)),
                Instr(Op.PARAM, srcs=[vreg(0)]),
                Instr(Op.CALL, callee="g"),
                Instr(Op.RET),
            ],
            extra={"g": callee},
        )
        fault = assert_paths_agree(image, entry="f")
        assert fault == ("call to g with too few queued params", "f", 2, 3)

    def test_bad_heap_address(self):
        image = single_image(
            [
                iloc.loadi(-1, vreg(0)),
                iloc.load(vreg(0), vreg(1)),
                Instr(Op.RET, srcs=[vreg(1)]),
            ]
        )
        fault = assert_paths_agree(image, entry="f")
        assert fault is not None
        assert fault[1:] == ("f", 1, 2)

    def test_unknown_global_array(self):
        image = single_image(
            [
                Instr(Op.LOADA, addr=Symbol("ghost", "global"), dst=vreg(0)),
                Instr(Op.RET, srcs=[vreg(0)]),
            ]
        )
        fault = assert_paths_agree(image, entry="f")
        assert fault == ("unknown global array 'ghost'", "f", 0, 1)

    def test_fault_pc_is_original_coordinates(self):
        """Labels precede the faulting instruction: the fast path (which
        strips them) must still report the original pc."""
        image = single_image(
            [
                iloc.loadi(1, vreg(0)),
                iloc.label("a"),
                iloc.label("b"),
                iloc.binary(Op.ADD, vreg(0), vreg(9), vreg(1)),
                Instr(Op.RET, srcs=[vreg(1)]),
            ]
        )
        fault = assert_paths_agree(image, entry="f")
        # pc 3 in original code (after two labels); labels cost no cycles.
        assert fault == ("read of uninitialized register %v9 in f", "f", 3, 2)

    @pytest.mark.parametrize(
        "op,first,expected",
        [
            (Op.AND, 0, 0),  # falsy left: right operand never read
            (Op.OR, 1, 1),   # truthy left: right operand never read
        ],
    )
    def test_short_circuit_skips_uninitialized_operand(
        self, op, first, expected
    ):
        image = single_image(
            [
                iloc.loadi(first, vreg(0)),
                iloc.binary(op, vreg(0), vreg(9), vreg(1)),
                Instr(Op.RET, srcs=[vreg(1)]),
            ]
        )
        fault = assert_paths_agree(image, entry="f")
        assert fault is None
        machine = Machine(single_image([]), force_slow=False)
        assert machine.uses_fast_path()


class TestSlowPathForcing:
    """The fast path must stand down for tracing, fault injection, and
    the explicit opt-outs — without decoding anything."""

    def source_image(self):
        return compile_source(
            "void main() { int i; int s; s = 0;"
            " for (i = 0; i < 10; i = i + 1) { s = s + i; }"
            " print(s); }"
        ).reference_image()

    def test_tracer_forces_slow_path(self):
        image = self.source_image()
        tracer = Tracer()
        machine = Machine(image, tracer=tracer)
        assert not machine.uses_fast_path()
        machine.run("main")
        assert machine.stats.output == [45]
        assert tracer.events  # the slow path actually recorded
        assert image.functions["main"]._decoded is None

    def test_armed_fault_probe_forces_slow_path(self):
        image = self.source_image()
        with faults.injected(faults.FaultSpec("rap.region.raise", "nope")):
            machine = Machine(image)
            assert not machine.uses_fast_path()
            machine.run("main")
        assert machine.stats.output == [45]
        assert image.functions["main"]._decoded is None

    def test_force_slow_flag(self):
        image = self.source_image()
        machine = Machine(image, force_slow=True)
        assert not machine.uses_fast_path()
        machine.run("main")
        assert machine.stats.output == [45]
        assert image.functions["main"]._decoded is None

    def test_fast_path_populates_decode_cache(self):
        image = self.source_image()
        machine = Machine(image)
        assert machine.uses_fast_path()
        machine.run("main")
        assert machine.stats.output == [45]
        assert image.functions["main"]._decoded is not None
        assert machine.decode_seconds > 0.0
