"""Round-trip fidelity of the program-image wire form (`interp/serialize.py`).

The service's artifact cache persists allocated images through this
format, so the contract is exact: a deserialized image must print
byte-identically and execute observably identically to the original.
"""

import pytest

from repro.bench.suite import program
from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.interp.serialize import (
    dumps_image,
    image_from_payload,
    image_to_payload,
    instr_from_dict,
    instr_to_dict,
    loads_image,
    reg_from_str,
    reg_to_str,
)
from repro.ir.iloc import Reg
from repro.ir.printer import format_code
from repro.resilience.pipeline import PassPipeline, PipelineConfig


def _allocated_image(source: str, allocator: str, k: int) -> ProgramImage:
    pipe = PassPipeline(PipelineConfig())
    prog = pipe.compile(source)
    module = prog.fresh_module()
    functions = {}
    for name, func in module.functions.items():
        result = pipe.allocate(func, allocator, k)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
    return ProgramImage(list(module.globals.values()), functions)


def _listings(image: ProgramImage) -> dict:
    return {
        name: format_code(fi.code) for name, fi in image.functions.items()
    }


class TestRegRoundtrip:
    @pytest.mark.parametrize("text", ["%v0", "%v137", "r0", "r7"])
    def test_roundtrip(self, text):
        assert reg_to_str(reg_from_str(text)) == text

    def test_bad_register_rejected(self):
        with pytest.raises(ValueError):
            reg_from_str("x3")


class TestImageRoundtrip:
    @pytest.mark.parametrize("allocator", ["none", "gra", "rap", "linearscan"])
    def test_sieve_roundtrip_is_byte_identical(self, allocator):
        source = program("sieve").source()
        if allocator == "none":
            image = compile_source(source).reference_image()
        else:
            image = _allocated_image(source, allocator, 4)
        restored = image_from_payload(image_to_payload(image))
        assert _listings(restored) == _listings(image)
        assert [g.name for g in restored.globals] == [
            g.name for g in image.globals
        ]
        fresh = run_program(image, max_cycles=5_000_000)
        redone = run_program(restored, max_cycles=5_000_000)
        assert redone.output == fresh.output
        assert redone.total.cycles == fresh.total.cycles
        assert redone.total.loads == fresh.total.loads
        assert redone.total.stores == fresh.total.stores

    @pytest.mark.parametrize("name", ["hanoi", "queens", "matmul"])
    def test_suite_programs_roundtrip(self, name):
        image = _allocated_image(program(name).source(), "rap", 5)
        restored = image_from_payload(image_to_payload(image))
        assert _listings(restored) == _listings(image)

    def test_bytes_are_canonical_and_stable(self):
        image = _allocated_image(program("sieve").source(), "gra", 3)
        blob = dumps_image(image)
        again = dumps_image(loads_image(blob))
        assert blob == again

    def test_version_mismatch_is_a_cold_miss(self):
        image = compile_source("void main() { print(1); }").reference_image()
        payload = image_to_payload(image)
        payload["version"] = 999
        import json

        assert loads_image(json.dumps(payload).encode()) is None
        with pytest.raises(ValueError):
            image_from_payload(payload)

    def test_instr_dict_drops_defaults(self):
        image = compile_source("void main() { print(1); }").reference_image()
        code = image.functions["main"].code
        for instr in code:
            data = instr_to_dict(instr)
            assert "comment" not in data or data["comment"]
            assert str(instr_from_dict(data)) == str(instr)
