"""Parser unit tests."""

import pytest

from repro.frontend import ast
from repro.frontend.errors import ParseError
from repro.frontend.parser import parse


def parse_stmts(body):
    program = parse("void f() { %s }" % body)
    return program.functions[0].body


def parse_expr(expr):
    stmts = parse_stmts("int x; x = %s;" % expr)
    return stmts[1].value


class TestTopLevel:
    def test_empty_program(self):
        program = parse("")
        assert program.globals == [] and program.functions == []

    def test_global_scalar(self):
        program = parse("int n = 5;")
        decl = program.globals[0]
        assert decl.name == "n" and decl.base_type == "int"
        assert isinstance(decl.init, ast.IntLit) and decl.init.value == 5

    def test_global_array_one_dim(self):
        decl = parse("float x[10];").globals[0]
        assert decl.dims == [10] and decl.size == 10

    def test_global_array_two_dims(self):
        decl = parse("int m[3][4];").globals[0]
        assert decl.dims == [3, 4] and decl.size == 12

    def test_three_dims_rejected(self):
        with pytest.raises(ParseError):
            parse("int m[2][2][2];")

    def test_array_initializer_rejected(self):
        with pytest.raises(ParseError):
            parse("int m[2] = 1;")

    def test_zero_extent_rejected(self):
        with pytest.raises(ParseError):
            parse("int m[0];")

    def test_function_with_params(self):
        func = parse("int f(int a, float b) { return a; }").functions[0]
        assert func.name == "f" and func.ret_type == "int"
        assert [p.name for p in func.params] == ["a", "b"]
        assert [p.base_type for p in func.params] == ["int", "float"]

    def test_array_param(self):
        func = parse("void f(float v[]) { }").functions[0]
        assert func.params[0].is_array and func.params[0].dims == [0]

    def test_two_dim_array_param(self):
        func = parse("void f(int m[][7]) { }").functions[0]
        assert func.params[0].dims == [0, 7]

    def test_void_function(self):
        assert parse("void f() { }").functions[0].ret_type == "void"

    def test_void_variable_rejected(self):
        with pytest.raises(ParseError):
            parse("void f() { void x; }")

    def test_junk_at_top_level_rejected(self):
        with pytest.raises(ParseError):
            parse("banana")


class TestStatements:
    def test_local_decl_with_init(self):
        stmt = parse_stmts("int x = 3;")[0]
        assert isinstance(stmt, ast.VarDecl) and stmt.init.value == 3

    def test_assignment(self):
        stmt = parse_stmts("int x; x = 1;")[1]
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Name)

    def test_array_element_assignment(self):
        stmt = parse_stmts("int a[4]; a[2] = 1;")[1]
        assert isinstance(stmt.target, ast.Index)
        assert len(stmt.target.indices) == 1

    def test_two_dim_assignment(self):
        stmt = parse_stmts("int a[4][4]; a[1][2] = 1;")[1]
        assert len(stmt.target.indices) == 2

    def test_if_without_else(self):
        stmt = parse_stmts("int x; if (x) { x = 1; }")[1]
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1 and stmt.else_body == []

    def test_if_with_else(self):
        stmt = parse_stmts("int x; if (x) { x = 1; } else { x = 2; }")[1]
        assert len(stmt.else_body) == 1

    def test_if_with_unbraced_bodies(self):
        stmt = parse_stmts("int x; if (x) x = 1; else x = 2;")[1]
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_dangling_else_binds_to_nearest_if(self):
        stmt = parse_stmts("int x; if (x) if (x) x = 1; else x = 2;")[1]
        assert stmt.else_body == []
        inner = stmt.then_body[0]
        assert isinstance(inner, ast.If) and len(inner.else_body) == 1

    def test_while(self):
        stmt = parse_stmts("int x; while (x < 3) { x = x + 1; }")[1]
        assert isinstance(stmt, ast.While) and len(stmt.body) == 1

    def test_for_full(self):
        stmt = parse_stmts("int i; for (i = 0; i < 3; i = i + 1) { }")[1]
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None and stmt.cond is not None
        assert stmt.update is not None

    def test_for_with_empty_clauses(self):
        stmt = parse_stmts("int i; for (;;) { }")[1]
        assert stmt.init is None and stmt.cond is None and stmt.update is None

    def test_return_value(self):
        program = parse("int f() { return 1 + 2; }")
        stmt = program.functions[0].body[0]
        assert isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Binary)

    def test_bare_return(self):
        stmt = parse("void f() { return; }").functions[0].body[0]
        assert stmt.value is None

    def test_print(self):
        stmt = parse_stmts("print(42);")[0]
        assert isinstance(stmt, ast.Print)

    def test_call_statement(self):
        program = parse("void g() { } void f() { g(); }")
        stmt = program.functions[1].body[0]
        assert isinstance(stmt, ast.ExprStmt) and stmt.call.callee == "g"

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_stmts("int x; x = 1")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+" and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("1 - 2 - 3")
        assert expr.op == "-" and expr.left.op == "-"
        assert expr.right.value == 3

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*" and expr.left.op == "+"

    def test_comparison_precedence(self):
        expr = parse_expr("1 + 2 < 3 * 4")
        assert expr.op == "<"

    def test_logical_precedence(self):
        # || binds loosest, then &&, then equality.
        expr = parse_expr("1 == 2 && 3 < 4 || 0")
        assert expr.op == "||" and expr.left.op == "&&"

    def test_unary_minus(self):
        expr = parse_expr("-x")
        assert isinstance(expr, ast.Unary) and expr.op == "-"

    def test_double_negation(self):
        expr = parse_expr("!!x")
        assert expr.op == "!" and expr.operand.op == "!"

    def test_unary_binds_tighter_than_mul(self):
        expr = parse_expr("-x * 2")
        assert expr.op == "*" and isinstance(expr.left, ast.Unary)

    def test_call_expression_with_args(self):
        program = parse("int g(int a) { return a; } void f() { int x; x = g(1); }")
        call = program.functions[1].body[1].value
        assert isinstance(call, ast.Call) and len(call.args) == 1

    def test_nested_index_expression(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.indices[0], ast.Binary)

    def test_mod_operator(self):
        assert parse_expr("a % 2").op == "%"

    def test_unclosed_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("(1 + 2")
