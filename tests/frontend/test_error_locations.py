"""Diagnostics carry accurate source locations (a front end that cannot
point at the offending line is not production quality)."""

import pytest

from repro.frontend.errors import LexError, ParseError, SemanticError
from repro.frontend.parser import parse
from repro.frontend.sema import analyze


def parse_fails_at(source, line, fragment=""):
    with pytest.raises(ParseError) as err:
        parse(source, filename="prog.mc")
    assert err.value.location.line == line, str(err.value)
    assert fragment in str(err.value)
    assert "prog.mc" in str(err.value)


def sema_fails_at(source, line):
    with pytest.raises(SemanticError) as err:
        analyze(parse(source, filename="prog.mc"))
    assert err.value.location.line == line, str(err.value)


class TestParseLocations:
    def test_missing_semicolon(self):
        parse_fails_at("void f() {\n    int x;\n    x = 1\n}\n", 4)

    def test_bad_top_level(self):
        parse_fails_at("void f() { }\nbanana\n", 2)

    def test_unclosed_paren(self):
        parse_fails_at("void f() {\n    print((1 + 2);\n}\n", 2)


class TestSemaLocations:
    def test_undeclared_variable_line(self):
        sema_fails_at("void f() {\n    int a;\n    b = 1;\n}\n", 3)

    def test_type_error_line(self):
        sema_fails_at(
            "void f() {\n    int x;\n    float y;\n    y = 1.0;\n    x = y;\n}\n",
            5,
        )

    def test_bad_call_line(self):
        sema_fails_at(
            "int g(int a) { return a; }\nvoid f() {\n    g();\n}\n", 3
        )


class TestLexLocations:
    def test_bad_char_column(self):
        with pytest.raises(LexError) as err:
            parse("void f() {\n  int x@;\n}")
        assert err.value.location.line == 2
        assert err.value.location.column == 8
