"""Tests for the Mini-C unparser, including the parse∘pretty round trip."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_source
from repro.frontend.parser import parse
from repro.frontend.pretty import pretty_expr, pretty_program
from repro.interp.machine import run_program
from repro.testing import outputs_equal, random_source


def roundtrip(source):
    return pretty_program(parse(source))


class TestExpressions:
    def expr_of(self, text):
        program = parse(f"void f() {{ int x; int a; x = {text}; }}")
        return program.functions[0].body[2].value

    @pytest.mark.parametrize(
        "text",
        [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "1 - 2 - 3",
            "1 - (2 - 3)",
            "-x + 1",
            "-(x + 1)",
            "a % 2 == 0 && x < 3",
            "!(a < 1) || x != 2",
            "a / 2 / 3",
            "a - -x",
        ],
    )
    def test_precedence_preserving(self, text):
        first = self.expr_of(text)
        rendered = pretty_expr(first)
        second = self.expr_of(rendered)
        assert pretty_expr(second) == rendered  # fixed point

    def test_float_literal_keeps_point(self):
        assert pretty_expr(self.expr_of("1.5")) == "1.5"
        assert "." in pretty_expr(self.expr_of("2.0"))


class TestPrograms:
    def test_simple_roundtrip_is_fixed_point(self):
        source = """
        int g = 4;
        int f(int a, float v[]) {
            int i;
            for (i = 0; i < a; i = i + 1) { v[i] = i; }
            if (a > 2) { return 1; } else { return 0; }
        }
        void main() { print(g); }
        """
        once = roundtrip(source)
        twice = roundtrip(once)
        assert once == twice

    def test_two_dim_param_rendered(self):
        source = "void f(int m[][7]) { m[0][0] = 1; }"
        assert "int m[][7]" in roundtrip(source)

    def test_bare_return_rendered(self):
        assert "return;" in roundtrip("void f() { return; }")


class TestRoundTripBehaviour:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_random_program_roundtrip_behaviour(self, seed):
        source = random_source(seed, "small")
        rendered = pretty_program(parse(source))
        original = run_program(
            compile_source(source).reference_image(), max_cycles=3_000_000
        )
        rebuilt = run_program(
            compile_source(rendered).reference_image(), max_cycles=3_000_000
        )
        assert outputs_equal(original.output, rebuilt.output), rendered

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_pretty_is_idempotent(self, seed):
        source = random_source(seed, "small")
        once = roundtrip(source)
        assert roundtrip(once) == once
