"""Lexer unit tests."""

import pytest

from repro.frontend.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)][:-1]  # drop EOF


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_whitespace_only(self):
        assert kinds("  \t\n  \r\n") == [TokenKind.EOF]

    def test_identifier(self):
        tokens = tokenize("abc_123")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "abc_123"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("_x")[0].kind is TokenKind.IDENT

    def test_keywords_are_distinguished_from_identifiers(self):
        assert kinds("int intx")[:2] == [TokenKind.KW_INT, TokenKind.IDENT]

    def test_all_keywords(self):
        src = "int float void if else while for return print"
        expected = [
            TokenKind.KW_INT,
            TokenKind.KW_FLOAT,
            TokenKind.KW_VOID,
            TokenKind.KW_IF,
            TokenKind.KW_ELSE,
            TokenKind.KW_WHILE,
            TokenKind.KW_FOR,
            TokenKind.KW_RETURN,
            TokenKind.KW_PRINT,
        ]
        assert kinds(src)[:-1] == expected


class TestNumbers:
    def test_int_literal_value(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT_LIT
        assert token.value == 42

    def test_zero(self):
        assert tokenize("0")[0].value == 0

    def test_float_literal_value(self):
        token = tokenize("3.25")[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.value == pytest.approx(3.25)

    def test_float_with_exponent(self):
        assert tokenize("1e3")[0].value == pytest.approx(1000.0)
        assert tokenize("2.5e-2")[0].value == pytest.approx(0.025)
        assert tokenize("2E+1")[0].value == pytest.approx(20.0)

    def test_float_starting_with_dot(self):
        token = tokenize(".5")[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.value == pytest.approx(0.5)

    def test_malformed_exponent_raises(self):
        with pytest.raises(LexError):
            tokenize("1e+")

    def test_int_then_dot_digit_is_float(self):
        token = tokenize("12.75")[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.value == pytest.approx(12.75)


class TestOperators:
    def test_single_char_operators(self):
        src = "+ - * / % < > ! = ( ) { } [ ] , ;"
        expected = [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.PERCENT,
            TokenKind.LT,
            TokenKind.GT,
            TokenKind.NOT,
            TokenKind.ASSIGN,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.COMMA,
            TokenKind.SEMI,
        ]
        assert kinds(src)[:-1] == expected

    def test_two_char_operators(self):
        src = "== != <= >= && ||"
        expected = [
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.AND,
            TokenKind.OR,
        ]
        assert kinds(src)[:-1] == expected

    def test_two_char_preferred_over_one_char(self):
        # "<=" must not lex as "<" then "=".
        assert kinds("a<=b")[1] is TokenKind.LE

    def test_equality_vs_assignment(self):
        assert kinds("= ==")[:-1] == [TokenKind.ASSIGN, TokenKind.EQ]


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert texts("a // no newline") == ["a"]

    def test_block_comment_skipped(self):
        assert texts("a /* hi\n there */ b") == ["a", "b"]

    def test_nested_slashes_in_block_comment(self):
        assert texts("a /* // still comment */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* oops")


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].location.line, tokens[0].location.column) == (1, 1)
        assert (tokens[1].location.line, tokens[1].location.column) == (2, 3)

    def test_filename_recorded(self):
        token = tokenize("x", filename="prog.mc")[0]
        assert token.location.filename == "prog.mc"
        assert "prog.mc" in str(token.location)


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as err:
            tokenize("a $ b")
        assert "$" in str(err.value)

    def test_error_carries_location(self):
        with pytest.raises(LexError) as err:
            tokenize("ab\n  @")
        assert err.value.location.line == 2
