"""Robustness tests: the front end on structurally extreme (but legal)
programs, verified end-to-end through the interpreter."""

import pytest

from repro.compiler import compile_source
from repro.frontend.errors import FrontendError
from repro.interp.machine import run_program


def run(source, **kwargs):
    return run_program(compile_source(source).reference_image(), **kwargs)


class TestDeepNesting:
    def test_deeply_nested_ifs(self):
        depth = 30
        body = "print(1);"
        for i in range(depth):
            body = f"if (x > {i}) {{ {body} }}"
        out = run(f"void main() {{ int x; x = {depth + 1}; {body} }}").output
        assert out == [1]

    def test_deeply_nested_loops(self):
        source = """
        void main() {
            int a; int b; int c; int d; int n;
            int count;
            count = 0;
            for (a = 0; a < 3; a = a + 1) {
                for (b = 0; b < 3; b = b + 1) {
                    for (c = 0; c < 3; c = c + 1) {
                        for (d = 0; d < 3; d = d + 1) {
                            count = count + 1;
                        }
                    }
                }
            }
            print(count);
        }
        """
        assert run(source).output == [81]

    def test_long_expression_chain(self):
        terms = " + ".join(str(i) for i in range(1, 101))
        out = run(f"void main() {{ print({terms}); }}").output
        assert out == [5050]

    def test_deep_parenthesization(self):
        expr = "1"
        for _ in range(60):
            expr = f"({expr} + 1)"
        out = run(f"void main() {{ print({expr}); }}").output
        assert out == [61]

    def test_many_variables(self):
        decls = "".join(f"int v{i}; v{i} = {i}; " for i in range(80))
        total = " + ".join(f"v{i}" for i in range(80))
        out = run(f"void main() {{ {decls} print({total}); }}").output
        assert out == [sum(range(80))]

    def test_many_functions(self):
        functions = "\n".join(
            f"int f{i}(int x) {{ return x + {i}; }}" for i in range(40)
        )
        calls = "".join(f"s = f{i}(s); " for i in range(40))
        source = f"{functions}\nvoid main() {{ int s; s = 0; {calls} print(s); }}"
        assert run(source).output == [sum(range(40))]


class TestChainedCalls:
    def test_deep_call_chain(self):
        # f0 calls f1 calls ... f29.
        parts = ["int f29(int x) { return x + 29; }"]
        for i in range(28, -1, -1):
            parts.append(f"int f{i}(int x) {{ return f{i + 1}(x + {i}); }}")
        parts.append("void main() { print(f0(0)); }")
        assert run("\n".join(parts)).output == [sum(range(30))]

    def test_mutual_recursion(self):
        source = """
        int is_odd(int n);
        """
        # Mini-C has no forward declarations; use a single recursive
        # function computing parity instead.
        source = """
        int parity(int n) {
            if (n == 0) { return 0; }
            return 1 - parity(n - 1);
        }
        void main() { print(parity(9)); print(parity(10)); }
        """
        assert run(source).output == [1, 0]


class TestScaleThroughAllocators:
    @pytest.mark.parametrize("k", [3, 6])
    def test_wide_program_allocates(self, k):
        from repro.compiler import param_slots
        from repro.interp.machine import FunctionImage, ProgramImage
        from repro.regalloc import allocate_gra, allocate_rap

        decls = "".join(f"int v{i}; v{i} = {i}; " for i in range(25))
        total = " + ".join(f"v{i}" for i in range(25))
        source = f"void main() {{ {decls} print({total}); print({total}); }}"
        prog = compile_source(source)
        reference = run_program(prog.reference_image())
        for allocator in (allocate_gra, allocate_rap):
            module = prog.fresh_module()
            result = allocator(module.functions["main"], k)
            image = ProgramImage(
                [], {"main": FunctionImage("main", result.code, [])}
            )
            assert run_program(image).output == reference.output
