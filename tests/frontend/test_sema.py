"""Semantic-analysis unit tests."""

import pytest

from repro.frontend import ast
from repro.frontend.errors import SemanticError
from repro.frontend.parser import parse
from repro.frontend.sema import analyze, constant_value


def check(source):
    program = parse(source)
    return program, analyze(program)


def check_fails(source, fragment=""):
    with pytest.raises(SemanticError) as err:
        check(source)
    assert fragment in str(err.value)
    return err.value


class TestDeclarations:
    def test_symbols_recorded(self):
        _, info = check("int n; float x[4]; void f() { }")
        assert info.globals["n"].base_type == "int"
        assert info.globals["x"].dims == [4]
        assert info.functions["f"].ret_type == "void"

    def test_duplicate_global_rejected(self):
        check_fails("int n; float n;", "redeclaration")

    def test_duplicate_function_rejected(self):
        check_fails("void f() { } void f() { }", "redefinition")

    def test_duplicate_local_in_same_scope_rejected(self):
        check_fails("void f() { int x; int x; }", "redeclaration")

    def test_shadowing_in_nested_scope_allowed(self):
        check("void f() { int x; if (1) { int x; x = 2; } x = 1; }")

    def test_local_shadows_global(self):
        program, _ = check("int x; void f() { int x; x = 1; }")
        assign = program.functions[0].body[1]
        assert assign.target.symbol.kind == "local"

    def test_param_visible_in_body(self):
        program, _ = check("int f(int a) { return a; }")
        ret = program.functions[0].body[0]
        assert ret.value.symbol.kind == "param"

    def test_global_init_must_be_constant(self):
        check_fails("int f() { return 1; } int n = f();", "constant")

    def test_negative_constant_initializer(self):
        program, _ = check("int n = -3;")
        assert constant_value(program.globals[0].init) == -3


class TestScoping:
    def test_undeclared_variable_rejected(self):
        check_fails("void f() { x = 1; }", "undeclared")

    def test_inner_scope_name_invisible_outside(self):
        check_fails("void f() { if (1) { int y; y = 1; } y = 2; }", "undeclared")

    def test_sibling_scopes_can_reuse_names(self):
        check("void f() { if (1) { int y; y = 1; } else { int y; y = 2; } }")

    def test_for_variable_must_be_predeclared(self):
        check_fails("void f() { for (i = 0; i < 3; i = i + 1) { } }", "undeclared")


class TestTypes:
    def test_expression_types_annotated(self):
        program, _ = check("void f() { float x; x = 1 + 2.0; }")
        assign = program.functions[0].body[1]
        assert assign.value.ty == "float"
        assert assign.value.left.ty == "int"

    def test_int_arith_stays_int(self):
        program, _ = check("void f() { int x; x = 1 + 2 * 3; }")
        assert program.functions[0].body[1].value.ty == "int"

    def test_comparison_yields_int(self):
        program, _ = check("void f() { int x; x = 1.5 < 2.5; }")
        assert program.functions[0].body[1].value.ty == "int"

    def test_int_to_float_promotion_in_assignment(self):
        check("void f() { float x; x = 1; }")

    def test_float_to_int_demotion_rejected(self):
        check_fails("void f() { int x; x = 1.5; }", "cannot assign")

    def test_mod_requires_ints(self):
        check_fails("void f() { int x; x = 1.5 % 2; }", "int")

    def test_logical_ops_require_ints(self):
        check_fails("void f() { int x; x = 1.5 && 1; }", "int")

    def test_not_requires_int(self):
        check_fails("void f() { int x; x = !1.5; }", "int")

    def test_condition_must_be_int(self):
        check_fails("void f() { if (1.5) { } }", "int")

    def test_while_condition_must_be_int(self):
        check_fails("void f() { while (2.5) { } }", "int")

    def test_array_index_must_be_int(self):
        check_fails("void f() { int a[3]; a[1.5] = 1; }", "int")


class TestArrays:
    def test_scalar_indexed_rejected(self):
        check_fails("void f() { int x; x[0] = 1; }", "not an array")

    def test_array_used_as_scalar_rejected(self):
        check_fails("void f() { int a[3]; int x; x = a + 1; }", "scalar")

    def test_assignment_to_whole_array_rejected(self):
        check_fails("void f() { int a[3]; a = 1; }", "array")

    def test_wrong_index_count_rejected(self):
        check_fails("void f() { int a[3][3]; a[1] = 1; }", "indices")


class TestCalls:
    def test_unknown_function_rejected(self):
        check_fails("void f() { g(); }", "undefined function")

    def test_arity_mismatch_rejected(self):
        check_fails("void g(int a) { } void f() { g(); }", "arguments")

    def test_void_call_as_value_rejected(self):
        check_fails("void g() { } void f() { int x; x = g(); }", "void")

    def test_int_arg_promotes_to_float_param(self):
        check("void g(float a) { } void f() { g(1); }")

    def test_float_arg_to_int_param_rejected(self):
        check_fails("void g(int a) { } void f() { g(1.5); }", "cannot assign")

    def test_array_arg_matches_array_param(self):
        check("int x[4]; void g(int v[]) { } void f() { g(x); }")

    def test_scalar_for_array_param_rejected(self):
        check_fails("void g(int v[]) { } void f() { int x; g(x); }", "array")

    def test_expression_for_array_param_rejected(self):
        check_fails(
            "int x[4]; void g(int v[]) { } void f() { g(x[0] + 1); }", "array"
        )

    def test_element_type_mismatch_rejected(self):
        check_fails(
            "float x[4]; void g(int v[]) { } void f() { g(x); }", "element type"
        )

    def test_two_dim_column_extent_checked(self):
        check_fails(
            "int m[4][5]; void g(int v[][6]) { } void f() { g(m); }",
            "column extent",
        )

    def test_two_dim_matching_extent_ok(self):
        check("int m[4][6]; void g(int v[][6]) { } void f() { g(m); }")


class TestReturns:
    def test_missing_return_value_rejected(self):
        check_fails("int f() { return; }", "must return")

    def test_value_in_void_function_rejected(self):
        check_fails("void f() { return 1; }", "void function")

    def test_return_promotion_allowed(self):
        check("float f() { return 1; }")

    def test_return_demotion_rejected(self):
        check_fails("int f() { return 1.5; }", "cannot assign")
