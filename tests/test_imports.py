"""Every module in the package imports cleanly and exposes its __all__."""

import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    # __main__ runs the CLI (and exits) on import, by design.
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def test_package_version():
    assert repro.__version__


def test_public_api_surface():
    for symbol in (
        "compile_source",
        "run_program",
        "allocate_gra",
        "allocate_rap",
    ):
        assert hasattr(repro, symbol)
