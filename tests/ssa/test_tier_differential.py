"""ssaspill-allocated images execute byte-identically on all three
interpreter tiers.

The differential sweep mirrors the CI fuzz configuration: the bench
suite, 25 generator seeds, and the committed corpus, each compiled,
allocated by the SSA spill-then-color rung through the verifying
pipeline, and executed on the ``slow``, ``fast``, and ``compiled``
tiers.  Outputs and all counters (total and per-function) must agree
exactly — the allocator is a measurement competitor, so a tier-specific
divergence would silently skew Table 1.
"""

import os

import pytest

from repro.bench.suite import all_programs
from repro.cli import _allocate_image
from repro.compiler import compile_source
from repro.interp.machine import INTERP_TIERS, Machine
from repro.resilience.corpus import load_corpus
from repro.testing import random_source

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")


def run_tier(image, tier, max_cycles):
    machine = Machine(image, max_cycles=max_cycles, tier=tier)
    machine.run("main")
    return machine.stats


def assert_three_tiers_agree(image, max_cycles):
    slow, fast, compiled = (
        run_tier(image, tier, max_cycles) for tier in INTERP_TIERS
    )
    for other in (fast, compiled):
        assert other.output == slow.output
        assert other.total == slow.total
        assert other.per_function == slow.per_function


class TestBenchSuite:
    @pytest.mark.parametrize("bench", all_programs(), ids=lambda b: b.name)
    @pytest.mark.parametrize("k", [3, 7])
    def test_bench_program(self, bench, k):
        prog = compile_source(bench.source(), filename=bench.filename)
        image = _allocate_image(prog, "ssaspill", k)
        assert_three_tiers_agree(image, bench.max_cycles)


class TestFuzzSeeds:
    @pytest.mark.parametrize("seed", range(25))
    def test_fuzz_seed(self, seed):
        prog = compile_source(random_source(seed, "small"))
        image = _allocate_image(prog, "ssaspill", 3)
        assert_three_tiers_agree(image, 3_000_000)


def _corpus_entries():
    corpus = load_corpus(CORPUS_DIR)
    return corpus, corpus.entries


class TestCorpus:
    corpus, entries = _corpus_entries()

    @pytest.mark.parametrize("entry", entries, ids=lambda e: e.file)
    def test_corpus_program(self, entry):
        with open(entry.path(self.corpus.directory)) as handle:
            prog = compile_source(handle.read())
        image = _allocate_image(prog, "ssaspill", 3)
        assert_three_tiers_agree(image, 3_000_000)
