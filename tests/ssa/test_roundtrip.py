"""SSA construct -> destruct round-trip equivalence on the bench suite.

Building SSA and immediately destructing it (no spilling, no coloring —
values are their own locations) must be observationally invisible: the
round-tripped program prints the same output as the reference, with the
structural validator (`SSAForm.check`) happy in between.  This is the
subsystem-level guarantee the ``ssaspill`` allocator builds on.
"""

import pytest

from repro.bench.suite import all_programs
from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, Machine, ProgramImage
from repro.pdg.linearize import linearize
from repro.ssa import build_ssa, destruct


def roundtrip_image(prog):
    """Every function linearized, taken to SSA, validated, destructed."""
    module = prog.fresh_module()
    functions = {}
    for name, func in module.functions.items():
        code = [instr.clone() for instr in linearize(func).instrs]
        ssa = build_ssa(code, name)
        ssa.check()
        result = destruct(ssa)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
    return ProgramImage(list(module.globals.values()), functions)


@pytest.mark.parametrize("bench", all_programs(), ids=lambda b: b.name)
def test_roundtrip_output_matches_reference(bench):
    prog = compile_source(bench.source(), filename=bench.filename)

    reference = Machine(prog.reference_image(), max_cycles=bench.max_cycles)
    reference.run("main")

    machine = Machine(roundtrip_image(prog), max_cycles=bench.max_cycles)
    machine.run("main")

    assert machine.stats.output == reference.stats.output


@pytest.mark.parametrize("bench", all_programs(), ids=lambda b: b.name)
def test_construction_is_valid_ssa(bench):
    prog = compile_source(bench.source(), filename=bench.filename)
    module = prog.fresh_module()
    for name, func in module.functions.items():
        code = [instr.clone() for instr in linearize(func).instrs]
        ssa = build_ssa(code, name)
        ssa.check()  # raises SSAError on any structural violation
        # Every value maps back to an original register or is undef.
        for value in ssa.values():
            assert value in ssa.origin or value in ssa.undef
