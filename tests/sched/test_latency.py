"""Tests for the latency model."""

from repro.ir import iloc
from repro.ir.iloc import Instr, Op, Symbol, vreg
from repro.sched.latency import DEFAULT_LATENCIES, UNIT_MODEL, LatencyModel


def test_default_memory_latencies():
    model = LatencyModel()
    assert model.of(iloc.load(vreg(0), vreg(1))) == 3
    assert model.of(iloc.ldm(Symbol("s"), vreg(1))) == 3


def test_default_alu_latencies():
    model = LatencyModel()
    assert model.of(iloc.binary(Op.MUL, vreg(0), vreg(1), vreg(2))) == 2
    assert model.of(iloc.binary(Op.DIV, vreg(0), vreg(1), vreg(2))) == 5
    assert model.of(iloc.binary(Op.ADD, vreg(0), vreg(1), vreg(2))) == 1


def test_labels_are_free():
    assert LatencyModel().of(iloc.label("L")) == 0


def test_unit_model_flattens_everything():
    assert UNIT_MODEL.of(iloc.load(vreg(0), vreg(1))) == 1
    assert UNIT_MODEL.of(iloc.binary(Op.DIV, vreg(0), vreg(1), vreg(2))) == 1


def test_custom_model():
    model = LatencyModel(latencies={Op.LOAD: 10}, default=2)
    assert model.of(iloc.load(vreg(0), vreg(1))) == 10
    assert model.of(iloc.copy(vreg(0), vreg(1))) == 2


def test_defaults_table_is_not_shared_state():
    first = LatencyModel()
    second = LatencyModel()
    assert first.latencies == DEFAULT_LATENCIES
    assert first.latencies is not second.latencies
