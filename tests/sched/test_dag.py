"""Tests for the block dependence DAG."""

from repro.ir import iloc
from repro.ir.iloc import Instr, Op, Symbol, vreg
from repro.sched.dag import BlockDag
from repro.sched.latency import LatencyModel

MODEL = LatencyModel()


def dag_of(code):
    return BlockDag(code, MODEL)


def has_path(dag, src, dst):
    seen = set()
    stack = [src]
    while stack:
        node = stack.pop()
        if node == dst:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(dag.nodes[node].succs)
    return False


class TestRegisterDeps:
    def test_flow_dependence(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.binary(Op.ADD, vreg(0), vreg(0), vreg(1)),
        ]
        dag = dag_of(code)
        assert 1 in dag.nodes[0].succs

    def test_independent_instructions_unordered(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(1)),
        ]
        dag = dag_of(code)
        assert not has_path(dag, 0, 1)
        assert not has_path(dag, 1, 0)

    def test_anti_dependence(self):
        code = [
            iloc.loadi(1, vreg(0)),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            iloc.loadi(2, vreg(0)),  # must stay after the print
        ]
        dag = dag_of(code)
        assert has_path(dag, 1, 2)

    def test_output_dependence(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(0)),
        ]
        dag = dag_of(code)
        assert has_path(dag, 0, 1)

    def test_physical_register_reuse_serializes(self):
        # The allocation/scheduling tension in one DAG: two independent
        # computations sharing one physical register become a chain.
        from repro.ir.iloc import preg

        code = [
            iloc.loadi(1, preg(0)),
            Instr(Op.PRINT, srcs=[preg(0)]),
            iloc.loadi(2, preg(0)),
            Instr(Op.PRINT, srcs=[preg(0)]),
        ]
        dag = dag_of(code)
        assert has_path(dag, 0, 3)


class TestMemoryDeps:
    def test_heap_store_load_ordered(self):
        code = [
            iloc.loadi(4096, vreg(0)),
            iloc.store(vreg(0), vreg(0)),
            iloc.load(vreg(0), vreg(1)),
        ]
        dag = dag_of(code)
        assert has_path(dag, 1, 2)

    def test_heap_loads_commute(self):
        code = [
            iloc.loadi(4096, vreg(0)),
            iloc.load(vreg(0), vreg(1)),
            iloc.load(vreg(0), vreg(2)),
        ]
        dag = dag_of(code)
        assert not has_path(dag, 1, 2)
        assert not has_path(dag, 2, 1)

    def test_distinct_spill_slots_commute(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.stm(Symbol("f.a"), vreg(0)),
            iloc.ldm(Symbol("f.b"), vreg(1)),
        ]
        dag = dag_of(code)
        assert not has_path(dag, 1, 2)

    def test_same_spill_slot_ordered(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.stm(Symbol("f.a"), vreg(0)),
            iloc.ldm(Symbol("f.a"), vreg(1)),
        ]
        dag = dag_of(code)
        assert has_path(dag, 1, 2)

    def test_call_barriers_globals(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.stm(Symbol("g", "global"), vreg(0)),
            Instr(Op.CALL, callee="h"),
            iloc.ldm(Symbol("g", "global"), vreg(1)),
        ]
        dag = dag_of(code)
        assert has_path(dag, 1, 2)
        assert has_path(dag, 2, 3)

    def test_call_does_not_barrier_spill_slots(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.stm(Symbol("f.a"), vreg(0)),
            Instr(Op.CALL, callee="h"),
        ]
        dag = dag_of(code)
        # Only the heap/global barrier applies; the spill store is free to
        # move relative to the call.
        assert 2 not in dag.nodes[1].succs


class TestObservableOrder:
    def test_prints_keep_order(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(1)),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            Instr(Op.PRINT, srcs=[vreg(1)]),
        ]
        dag = dag_of(code)
        assert has_path(dag, 2, 3)

    def test_params_keep_order_before_call(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(1)),
            Instr(Op.PARAM, srcs=[vreg(0)]),
            Instr(Op.PARAM, srcs=[vreg(1)]),
            Instr(Op.CALL, callee="h", dst=vreg(2)),
        ]
        dag = dag_of(code)
        assert has_path(dag, 2, 3) and has_path(dag, 3, 4)

    def test_terminator_last(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(1)),
            iloc.cbr(vreg(0), "a", "b"),
        ]
        dag = dag_of(code)
        assert has_path(dag, 0, 2) and has_path(dag, 1, 2)


class TestPriorities:
    def test_critical_path_priority(self):
        # div (latency 5) chain outranks an independent loadI.
        code = [
            iloc.loadi(6, vreg(0)),
            iloc.binary(Op.DIV, vreg(0), vreg(0), vreg(1)),
            iloc.loadi(1, vreg(2)),
            Instr(Op.PRINT, srcs=[vreg(1)]),
        ]
        dag = dag_of(code)
        assert dag.nodes[0].priority > dag.nodes[2].priority
