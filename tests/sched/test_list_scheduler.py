"""Tests for the list scheduler and pipeline metric."""

import pytest

from repro.bench.harness import Harness
from repro.bench.suite import program
from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg
from repro.sched import (
    LatencyModel,
    UNIT_MODEL,
    schedule_block,
    schedule_code,
    simulate_block,
)

MODEL = LatencyModel()


class TestSimulate:
    def test_straightline_no_stalls(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(1)),
        ]
        assert simulate_block(code, UNIT_MODEL) == 2

    def test_load_use_stall(self):
        code = [
            iloc.loadi(4096, vreg(0)),
            iloc.load(vreg(0), vreg(1)),        # ready at issue+3
            iloc.binary(Op.ADD, vreg(1), vreg(1), vreg(2)),
        ]
        # load issues at 1, result at 4; add issues at 4, done 5.
        assert simulate_block(code, MODEL) == 5

    def test_independent_work_hides_latency(self):
        code = [
            iloc.loadi(4096, vreg(0)),
            iloc.load(vreg(0), vreg(1)),
            iloc.loadi(7, vreg(3)),             # fills one stall slot
            iloc.loadi(8, vreg(4)),             # fills the other
            iloc.binary(Op.ADD, vreg(1), vreg(1), vreg(2)),
        ]
        assert simulate_block(code, MODEL) == 5

    def test_labels_free(self):
        code = [iloc.label("L"), iloc.loadi(1, vreg(0))]
        assert simulate_block(code, UNIT_MODEL) == 1


class TestScheduleBlock:
    def test_hides_load_latency_by_hoisting_independent_work(self):
        code = [
            iloc.loadi(4096, vreg(0)),
            iloc.load(vreg(0), vreg(1)),
            iloc.binary(Op.ADD, vreg(1), vreg(1), vreg(2)),
            iloc.loadi(7, vreg(3)),
            iloc.loadi(8, vreg(4)),
            Instr(Op.PRINT, srcs=[vreg(2)]),
        ]
        scheduled, before, after = schedule_block(code, MODEL)
        assert after < before
        # The independent loadIs moved between the load and its use.
        add_at = next(i for i, x in enumerate(scheduled) if x.op is Op.ADD)
        load_at = next(i for i, x in enumerate(scheduled) if x.op is Op.LOAD)
        assert add_at - load_at > 1

    def test_never_regresses(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(1)),
            iloc.binary(Op.ADD, vreg(0), vreg(1), vreg(2)),
        ]
        _, before, after = schedule_block(code, MODEL)
        assert after <= before

    def test_preserves_instruction_multiset(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(4096, vreg(1)),
            iloc.load(vreg(1), vreg(2)),
            iloc.binary(Op.MUL, vreg(2), vreg(0), vreg(3)),
            Instr(Op.PRINT, srcs=[vreg(3)]),
        ]
        scheduled, _, _ = schedule_block(code, MODEL)
        assert sorted(id(i) for i in scheduled) == sorted(id(i) for i in code)

    def test_unit_model_keeps_order_length(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(1)),
            iloc.binary(Op.ADD, vreg(0), vreg(1), vreg(2)),
        ]
        _, before, after = schedule_block(code, UNIT_MODEL)
        assert before == after == 3


class TestScheduleCode:
    def test_labels_stay_at_block_heads(self):
        source = """
        void f() {
            int i; int s; s = 0;
            for (i = 0; i < 3; i = i + 1) { s = s + i; }
            print(s);
        }
        """
        from repro.pdg.linearize import linearize

        func = compile_source(source).module.functions["f"]
        code = [i.clone() for i in linearize(func).instrs]
        scheduled, report = schedule_code(code, MODEL)
        labels_before = [i.label for i in code if i.op is Op.LABEL]
        labels_after = [i.label for i in scheduled if i.op is Op.LABEL]
        assert labels_before == labels_after
        assert report.blocks >= 3

    @pytest.mark.parametrize("bench_name", ["hsort", "queens"])
    @pytest.mark.parametrize("allocator", ["gra", "rap"])
    def test_scheduled_code_behaves_identically(self, bench_name, allocator):
        harness = Harness()
        bench = program(bench_name)
        image, _ = harness.allocate_program(bench, allocator, 4)
        functions = {}
        for name, func_image in image.functions.items():
            code, _ = schedule_code(list(func_image.code), MODEL)
            functions[name] = FunctionImage(name, code, func_image.param_slots)
        stats = run_program(
            ProgramImage(image.globals, functions), max_cycles=bench.max_cycles
        )
        assert stats.output == harness.reference_output(bench)

    def test_allocation_pressure_lengthens_schedules(self):
        # The motivating tension: k=3 code (heavy register reuse) has a
        # longer static schedule than k=16 code for the same program.
        harness = Harness()
        bench = program("linpack")
        lengths = {}
        for k in (3, 16):
            image, _ = harness.allocate_program(bench, "gra", k)
            total = 0
            for func_image in image.functions.values():
                _, report = schedule_code(list(func_image.code), MODEL)
                total += report.length_after
            lengths[k] = total
        assert lengths[3] > lengths[16]


class TestIssueWidth:
    def test_dual_issue_halves_independent_work(self):
        code = [iloc.loadi(i, vreg(i)) for i in range(8)]
        single = simulate_block(code, UNIT_MODEL, issue_width=1)
        dual = simulate_block(code, UNIT_MODEL, issue_width=2)
        assert single == 8
        assert dual == 4

    def test_dependent_chain_gains_nothing_from_width(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.binary(Op.ADD, vreg(0), vreg(0), vreg(1)),
            iloc.binary(Op.ADD, vreg(1), vreg(1), vreg(2)),
            iloc.binary(Op.ADD, vreg(2), vreg(2), vreg(3)),
        ]
        assert simulate_block(code, UNIT_MODEL, 1) == simulate_block(
            code, UNIT_MODEL, 4
        )

    def test_width_one_matches_legacy_semantics(self):
        code = [
            iloc.loadi(4096, vreg(0)),
            iloc.load(vreg(0), vreg(1)),
            iloc.binary(Op.ADD, vreg(1), vreg(1), vreg(2)),
        ]
        assert simulate_block(code, MODEL, issue_width=1) == 5
