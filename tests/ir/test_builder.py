"""Tests for AST -> PDG lowering."""

import pytest

from repro.frontend.parser import parse
from repro.frontend.sema import analyze
from repro.ir.builder import arg_slot_name, build_module
from repro.ir.iloc import Op
from repro.pdg.nodes import Predicate, Region


def build(source, granularity="statement"):
    program = parse(source)
    return build_module(program, analyze(program), granularity=granularity)


def func_of(source, name="f", granularity="statement"):
    return build(source, granularity).functions[name]


def ops_of(func):
    return [instr.op for instr in func.walk_instrs()]


class TestScalars:
    def test_assignment_ends_in_copy(self):
        # The paper's copy-statement analysis depends on unallocated iloc
        # containing an explicit i2i per scalar assignment.
        func = func_of("void f() { int x; x = 1 + 2; }")
        ops = ops_of(func)
        assert ops == [Op.LOADI, Op.LOADI, Op.ADD, Op.I2I]

    def test_variable_has_stable_home_register(self):
        func = func_of("void f() { int x; x = 1; x = 2; }")
        copies = [i for i in func.walk_instrs() if i.op is Op.I2I]
        assert copies[0].dst == copies[1].dst

    def test_decl_with_init_emits_copy(self):
        func = func_of("void f() { int x = 5; }")
        assert ops_of(func) == [Op.LOADI, Op.I2I]

    def test_decl_without_init_emits_nothing(self):
        func = func_of("void f() { int x; }")
        assert ops_of(func) == []  # the implicit ret is added at linearization


class TestGlobals:
    def test_global_scalar_read_is_ldm(self):
        module = build("int g; void f() { int x; x = g; }")
        func = module.functions["f"]
        ldms = [i for i in func.walk_instrs() if i.op is Op.LDM]
        assert len(ldms) == 1
        assert ldms[0].addr.name == "g" and ldms[0].addr.space == "global"

    def test_global_scalar_write_is_stm(self):
        func = build("int g; void f() { g = 3; }").functions["f"]
        stms = [i for i in func.walk_instrs() if i.op is Op.STM]
        assert len(stms) == 1 and stms[0].addr.space == "global"

    def test_global_array_access_uses_loada(self):
        func = build("int a[4]; void f() { a[1] = 2; }").functions["f"]
        ops = ops_of(func)
        assert Op.LOADA in ops and Op.STORE in ops


class TestArrays:
    def test_local_array_alloca_hoisted_to_entry(self):
        func = func_of(
            "void f() { int i; for (i = 0; i < 2; i = i + 1) { int a[8]; a[0] = i; } }"
        )
        first_items = [
            item for item in func.entry.items if not isinstance(item, Region)
        ]
        assert first_items[0].op is Op.ALLOCA
        assert first_items[0].imm == 8

    def test_two_dim_addressing_multiplies_by_column_extent(self):
        func = build("int m[3][7]; void f() { m[1][2] = 9; }").functions["f"]
        loadis = [i for i in func.walk_instrs() if i.op is Op.LOADI]
        assert any(i.imm == 7 for i in loadis)  # column extent materialized

    def test_one_dim_addressing_has_no_multiply(self):
        func = build("int a[5]; void f() { a[3] = 1; }").functions["f"]
        assert Op.MUL not in ops_of(func)

    def test_array_param_base_used_directly(self):
        func = func_of("void f(int v[]) { v[0] = 1; }")
        assert Op.LOADA not in ops_of(func)


class TestParams:
    def test_prologue_loads_each_param_from_arg_slot(self):
        func = func_of("void f(int a, float b) { }")
        prologue = [i for i in func.entry.items if not isinstance(i, Region)][:2]
        assert all(i.op is Op.LDM for i in prologue)
        assert prologue[0].addr.name == arg_slot_name("f", 0)
        assert prologue[1].addr.name == arg_slot_name("f", 1)
        assert prologue[0].dst == func.params[0].reg

    def test_param_slots_are_spill_space(self):
        func = func_of("void f(int a) { }")
        prologue = next(i for i in func.walk_instrs() if i.op is Op.LDM)
        assert prologue.addr.space == "spill"


class TestCalls:
    def test_params_then_call(self):
        module = build("int g(int a, int b) { return a; } void f() { int x; x = g(1, 2); }")
        func = module.functions["f"]
        ops = ops_of(func)
        call_at = ops.index(Op.CALL)
        assert ops[call_at - 2] is Op.PARAM and ops[call_at - 1] is Op.PARAM

    def test_call_without_result_has_no_dst(self):
        module = build("void g() { } void f() { g(); }")
        call = next(i for i in module.functions["f"].walk_instrs() if i.op is Op.CALL)
        assert call.dst is None

    def test_call_with_result_has_dst(self):
        module = build("int g() { return 1; } void f() { int x; x = g(); }")
        call = next(i for i in module.functions["f"].walk_instrs() if i.op is Op.CALL)
        assert call.dst is not None

    def test_array_argument_passes_base_address(self):
        module = build("int a[4]; void g(int v[]) { } void f() { g(a); }")
        func = module.functions["f"]
        assert Op.LOADA in ops_of(func)


class TestRegions:
    def test_statement_granularity_one_region_per_statement(self):
        func = func_of("void f() { int x; x = 1; x = 2; x = 3; }")
        stmt_regions = [
            item for item in func.entry.items if isinstance(item, Region)
        ]
        assert len(stmt_regions) == 3
        assert all(region.kind == "stmt" for region in stmt_regions)

    def test_merged_granularity_attaches_directly(self):
        func = func_of(
            "void f() { int x; x = 1; x = 2; }", granularity="merged"
        )
        assert not [i for i in func.entry.items if isinstance(i, Region)]

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            build("void f() { }", granularity="huge")

    def test_if_region_structure(self):
        func = func_of("void f() { int x; if (1) { x = 1; } else { x = 2; } }")
        if_region = func.entry.items[-1]
        pred = next(i for i in if_region.items if isinstance(i, Predicate))
        assert pred.true_region is not None and pred.false_region is not None

    def test_if_without_else_has_no_false_region(self):
        func = func_of("void f() { if (1) { print(1); } }")
        if_region = func.entry.items[-1]
        pred = next(i for i in if_region.items if isinstance(i, Predicate))
        assert pred.false_region is None

    def test_while_is_loop_region_with_guard(self):
        func = func_of("void f() { int i; i = 0; while (i < 3) { i = i + 1; } }")
        loop = next(
            item
            for item in func.entry.items
            if isinstance(item, Region) and item.is_loop
        )
        assert isinstance(loop.items[-1], Predicate)
        assert loop.items[-1].false_region is None

    def test_for_desugars_to_init_plus_loop(self):
        func = func_of("void f() { int i; for (i = 0; i < 3; i = i + 1) { print(i); } }")
        regions = [item for item in func.entry.items if isinstance(item, Region)]
        assert regions[-1].is_loop
        # The update statement lands at the end of the body region.
        body = regions[-1].items[-1].true_region
        assert isinstance(body.items[-1], Region)

    def test_for_without_condition_guards_on_constant_true(self):
        func = func_of(
            "void f() { int i; i = 0; for (;;) { i = i + 1; if (i > 2) { return; } } }"
        )
        loop = next(
            item
            for item in func.entry.items
            if isinstance(item, Region) and item.is_loop
        )
        guard_cond_def = loop.items[0]
        assert guard_cond_def.op is Op.LOADI and guard_cond_def.imm == 1

    def test_figure1_shape(self):
        # The paper's Figure 1: while loop containing an if/else.
        func = func_of(
            """
            void f() {
                int i; int j;
                i = 1;
                while (i < 10) {
                    j = i + 1;
                    if (j == 7) { print(1); } else { print(2); }
                    i = i + 1;
                }
                print(i);
            }
            """
        )
        loop = next(
            item
            for item in func.entry.items
            if isinstance(item, Region) and item.is_loop
        )
        body = loop.items[-1].true_region
        if_region = next(
            item
            for item in body.items
            if isinstance(item, Region)
            and any(isinstance(x, Predicate) for x in item.items)
        )
        pred = next(x for x in if_region.items if isinstance(x, Predicate))
        assert pred.true_region is not None and pred.false_region is not None
