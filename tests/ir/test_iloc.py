"""Unit tests for the iloc instruction set."""

import pytest

from repro.ir import iloc
from repro.ir.iloc import Instr, Op, Reg, Symbol, preg, vreg


class TestReg:
    def test_virtual_and_physical(self):
        assert vreg(3).is_virtual and not vreg(3).is_physical
        assert preg(2).is_physical and not preg(2).is_virtual

    def test_str(self):
        assert str(vreg(7)) == "%v7"
        assert str(preg(0)) == "r0"

    def test_equality_and_hash(self):
        assert vreg(1) == vreg(1)
        assert vreg(1) != preg(1)
        assert len({vreg(1), vreg(1), preg(1)}) == 2

    def test_ordering_is_total(self):
        regs = [vreg(2), preg(1), vreg(0)]
        assert sorted(regs) == [preg(1), vreg(0), vreg(2)]

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Reg("x", 0)


class TestSymbol:
    def test_spaces(self):
        assert Symbol("a").space == "spill"
        assert Symbol("g", "global").space == "global"

    def test_bad_space_rejected(self):
        with pytest.raises(ValueError):
            Symbol("a", "heap")

    def test_equality(self):
        assert Symbol("a") == Symbol("a")
        assert Symbol("a") != Symbol("a", "global")


class TestInstr:
    def test_uses_and_defs_binary(self):
        instr = iloc.binary(Op.ADD, vreg(1), vreg(2), vreg(3))
        assert instr.uses == [vreg(1), vreg(2)]
        assert instr.defs == [vreg(3)]
        assert instr.regs() == [vreg(1), vreg(2), vreg(3)]

    def test_store_has_no_defs(self):
        instr = iloc.store(vreg(1), vreg(2))
        assert instr.defs == [] and instr.uses == [vreg(1), vreg(2)]

    def test_ldm_defines_only(self):
        instr = iloc.ldm(Symbol("s"), vreg(4))
        assert instr.uses == [] and instr.defs == [vreg(4)]

    def test_copy_flag(self):
        assert iloc.copy(vreg(1), vreg(2)).is_copy
        assert not iloc.loadi(1, vreg(2)).is_copy

    def test_branch_flags(self):
        assert iloc.cbr(vreg(1), "a", "b").is_branch
        assert iloc.jmp("a").is_branch
        assert Instr(Op.RET).is_branch
        assert not iloc.copy(vreg(1), vreg(2)).is_branch

    def test_rewrite_regs(self):
        instr = iloc.binary(Op.ADD, vreg(1), vreg(2), vreg(1))
        instr.rewrite_regs({vreg(1): preg(0), vreg(2): preg(1)})
        assert instr.srcs == [preg(0), preg(1)] and instr.dst == preg(0)

    def test_rewrite_leaves_unmapped_regs(self):
        instr = iloc.copy(vreg(1), vreg(2))
        instr.rewrite_regs({vreg(1): preg(0)})
        assert instr.srcs == [preg(0)] and instr.dst == vreg(2)

    def test_clone_is_independent(self):
        instr = iloc.binary(Op.MUL, vreg(1), vreg(2), vreg(3))
        other = instr.clone()
        other.rewrite_regs({vreg(1): preg(0)})
        assert instr.srcs[0] == vreg(1)
        assert other.srcs[0] == preg(0)

    def test_binary_constructor_rejects_non_binary(self):
        with pytest.raises(ValueError):
            iloc.binary(Op.I2I, vreg(1), vreg(2), vreg(3))

    def test_str_forms(self):
        assert str(iloc.loadi(5, vreg(1))) == "loadI 5 => %v1"
        assert str(iloc.copy(vreg(1), vreg(2))) == "i2i %v1 => %v2"
        assert str(iloc.ldm(Symbol("s"), vreg(1))) == "ldm [s] => %v1"
        assert str(iloc.stm(Symbol("s"), vreg(1))) == "stm [s], %v1"
        assert str(iloc.cbr(vreg(1), "a", "b")) == "cbr %v1 -> a, b"
        assert str(iloc.label("L")) == "L:"
        assert "call f" in str(Instr(Op.CALL, callee="f", dst=vreg(1)))

    def test_counting_categories_are_disjoint(self):
        load_set = set(iloc.LOAD_OPS)
        store_set = set(iloc.STORE_OPS)
        copy_set = set(iloc.COPY_OPS)
        assert not (load_set & store_set)
        assert not (load_set & copy_set)
        assert not (store_set & copy_set)
