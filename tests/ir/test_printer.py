"""Tests for the listing printer."""

from repro.compiler import compile_source
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg
from repro.ir.printer import format_code, format_function, format_region
from repro.pdg.linearize import linearize


SRC = """
void f(int a) {
    int x;
    x = a + 1;
    if (x > 2) { print(x); }
    while (x > 0) { x = x - 1; }
}
"""


def test_format_code_outdents_labels():
    code = [iloc.label("L1"), iloc.loadi(1, vreg(0))]
    text = format_code(code)
    assert text.splitlines()[0] == "L1:"
    assert text.splitlines()[1].startswith("    ")


def test_format_function_shows_header_and_regions():
    func = compile_source(SRC).module.functions["f"]
    text = format_function(func)
    assert text.startswith("function f(")
    assert "(loop)" in text
    assert "if %v" in text


def test_format_region_nests_branches():
    func = compile_source(SRC).module.functions["f"]
    text = format_region(func.entry)
    assert "[entry]" in text
    assert "print" in text


def test_linear_listing_roundtrips_all_instructions():
    func = compile_source(SRC).module.functions["f"]
    linear = linearize(func)
    text = format_code(linear.instrs)
    body = [i for i in linear.instrs if i.op is not Op.LABEL]
    assert len([l for l in text.splitlines() if l.startswith("    ")]) == len(body)
