"""Tests for the spill-slot discipline verifier."""

import pytest

from repro.bench.harness import Harness
from repro.bench.suite import program
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, Symbol, vreg
from repro.ir.spillcheck import (
    SpillSlotError,
    check_spill_discipline,
    spill_slots_used,
)

S = Symbol("f.%v1")
T = Symbol("f.%v2")


class TestBasics:
    def test_store_then_load_ok(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.stm(S, vreg(0)),
            iloc.ldm(S, vreg(1)),
            Instr(Op.RET, srcs=[vreg(1)]),
        ]
        check_spill_discipline(code)

    def test_load_before_store_rejected(self):
        code = [
            iloc.ldm(S, vreg(1)),
            iloc.stm(S, vreg(1)),
            Instr(Op.RET),
        ]
        with pytest.raises(SpillSlotError):
            check_spill_discipline(code)

    def test_initialized_slots_whitelisted(self):
        code = [iloc.ldm(Symbol("f.arg0"), vreg(0)), Instr(Op.RET)]
        check_spill_discipline(code, initialized=["f.arg0"])
        with pytest.raises(SpillSlotError):
            check_spill_discipline(code)

    def test_global_symbols_ignored(self):
        code = [iloc.ldm(Symbol("g", "global"), vreg(0)), Instr(Op.RET)]
        check_spill_discipline(code)  # globals are zero-initialized data

    def test_spill_slots_used(self):
        code = [
            iloc.stm(S, vreg(0)),
            iloc.ldm(T, vreg(1)),
            iloc.ldm(Symbol("g", "global"), vreg(2)),
        ]
        assert spill_slots_used(code) == {S.name, T.name}


class TestPathSensitivity:
    def test_store_on_one_branch_only_rejected(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.cbr(vreg(0), "T", "E"),
            iloc.label("T"),
            iloc.stm(S, vreg(0)),
            iloc.label("E"),
            iloc.ldm(S, vreg(1)),
            Instr(Op.RET, srcs=[vreg(1)]),
        ]
        with pytest.raises(SpillSlotError):
            check_spill_discipline(code)

    def test_store_on_both_branches_ok(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.cbr(vreg(0), "T", "F"),
            iloc.label("T"),
            iloc.stm(S, vreg(0)),
            iloc.jmp("E"),
            iloc.label("F"),
            iloc.stm(S, vreg(0)),
            iloc.label("E"),
            iloc.ldm(S, vreg(1)),
            Instr(Op.RET, srcs=[vreg(1)]),
        ]
        check_spill_discipline(code)

    def test_loop_carried_store_counts(self):
        # store in iteration n feeds load in iteration n+1 — but the first
        # iteration's load has no prior store: rejected.
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.label("H"),
            iloc.ldm(S, vreg(1)),
            iloc.stm(S, vreg(0)),
            iloc.cbr(vreg(0), "H", "X"),
            iloc.label("X"),
            Instr(Op.RET),
        ]
        with pytest.raises(SpillSlotError):
            check_spill_discipline(code)

    def test_preloop_store_makes_loop_load_safe(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.stm(S, vreg(0)),
            iloc.label("H"),
            iloc.ldm(S, vreg(1)),
            iloc.cbr(vreg(0), "H", "X"),
            iloc.label("X"),
            Instr(Op.RET),
        ]
        check_spill_discipline(code)


class TestAllocatorsRespectDiscipline:
    @pytest.mark.parametrize("allocator", ["gra", "rap"])
    @pytest.mark.parametrize("name", ["hsort", "queens", "sieve"])
    def test_suite_output_clean(self, allocator, name):
        harness = Harness()
        image, _ = harness.allocate_program(program(name), allocator, 3)
        for func_image in image.functions.values():
            check_spill_discipline(
                func_image.code, initialized=func_image.param_slots
            )
