"""Merged-granularity lowering details (the §4 larger-regions variant)."""

import pytest

from repro.frontend.parser import parse
from repro.frontend.sema import analyze
from repro.ir.builder import build_module
from repro.ir.iloc import Op
from repro.pdg.nodes import Predicate, Region


def func_of(source, name="f"):
    program = parse(source)
    module = build_module(program, analyze(program), granularity="merged")
    return module.functions[name]


class TestMergedGranularity:
    def test_simple_statements_attach_to_parent(self):
        func = func_of("void f() { int x; x = 1; x = 2; print(x); }")
        assert not [i for i in func.entry.items if isinstance(i, Region)]

    def test_control_statements_still_get_regions(self):
        func = func_of(
            "void f() { int x; x = 1; if (x) { x = 2; } while (x) { x = 0; } }"
        )
        regions = [i for i in func.entry.items if isinstance(i, Region)]
        assert len(regions) == 2
        assert regions[1].is_loop

    def test_branch_bodies_merge_their_statements(self):
        func = func_of(
            "void f() { int x; if (1) { x = 1; x = 2; print(x); } }"
        )
        if_region = next(i for i in func.entry.items if isinstance(i, Region))
        pred = next(i for i in if_region.items if isinstance(i, Predicate))
        then_region = pred.true_region
        # All three statements lowered directly into the branch region.
        assert not [i for i in then_region.items if isinstance(i, Region)]
        assert sum(1 for i in then_region.items if i.op is Op.I2I) == 2

    def test_loop_bodies_merge_their_statements(self):
        func = func_of(
            "void f() { int i; int s; s = 0;"
            " for (i = 0; i < 3; i = i + 1) { s = s + i; s = s * 2; } }"
        )
        loop = next(
            i
            for i in func.entry.items
            if isinstance(i, Region) and i.is_loop
        )
        body = loop.items[-1].true_region
        assert not [i for i in body.items if isinstance(i, Region)]

    def test_same_code_both_granularities(self):
        # The instruction stream is identical; only the region partition
        # differs (so Table-1 differences are purely allocator behaviour).
        source = "void f(int a) { int x; x = a + 1; if (x) { print(x); } }"
        program = parse(source)
        merged = build_module(program, analyze(program), granularity="merged")
        program2 = parse(source)
        per_stmt = build_module(
            program2, analyze(program2), granularity="statement"
        )
        ops_merged = [i.op for i in merged.functions["f"].walk_instrs()]
        ops_stmt = [i.op for i in per_stmt.functions["f"].walk_instrs()]
        assert ops_merged == ops_stmt
