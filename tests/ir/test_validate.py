"""Tests for the structural code verifier."""

import pytest

from repro.ir import iloc
from repro.ir.iloc import Instr, Op, preg, vreg
from repro.ir.validate import (
    ValidationError,
    check_allocated,
    check_wellformed,
    used_registers,
)


class TestWellformed:
    def test_valid_code_passes(self):
        code = [
            iloc.label("L0"),
            iloc.loadi(1, vreg(0)),
            iloc.cbr(vreg(0), "L0", "L1"),
            iloc.label("L1"),
            Instr(Op.RET),
        ]
        check_wellformed(code)

    def test_duplicate_label_rejected(self):
        with pytest.raises(ValidationError):
            check_wellformed([iloc.label("L"), iloc.label("L")])

    def test_jump_to_unknown_label_rejected(self):
        with pytest.raises(ValidationError):
            check_wellformed([iloc.jmp("nowhere")])

    def test_branch_to_unknown_label_rejected(self):
        with pytest.raises(ValidationError):
            check_wellformed(
                [iloc.label("a"), iloc.cbr(vreg(0), "a", "missing")]
            )

    def test_bad_operand_count_rejected(self):
        broken = Instr(Op.I2I, srcs=[vreg(1), vreg(2)], dst=vreg(3))
        with pytest.raises(ValidationError):
            check_wellformed([broken])

    def test_missing_symbol_rejected(self):
        with pytest.raises(ValidationError):
            check_wellformed([Instr(Op.LDM, dst=vreg(0))])


class TestAllocated:
    def test_physical_code_passes(self):
        check_allocated([iloc.copy(preg(0), preg(1))], k=2)

    def test_surviving_virtual_register_rejected(self):
        with pytest.raises(ValidationError):
            check_allocated([iloc.copy(preg(0), vreg(1))], k=2)

    def test_register_index_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            check_allocated([iloc.copy(preg(0), preg(5))], k=3)

    def test_used_registers(self):
        code = [iloc.copy(preg(0), preg(1)), iloc.loadi(1, preg(0))]
        assert used_registers(code) == {preg(0), preg(1)}
