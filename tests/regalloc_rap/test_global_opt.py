"""Tests for the global (cross-block) redundant load/store elimination."""

import pytest

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, Symbol, preg
from repro.regalloc.rap import allocate_rap
from repro.regalloc.rap.global_opt import eliminate_redundant_mem_ops_global

A = Symbol("f.%v1")
G = Symbol("g", "global")


def ops(code):
    return [i.op for i in code]


class TestCrossBlock:
    def test_load_available_across_fallthrough(self):
        code = [
            iloc.ldm(A, preg(1)),
            iloc.jmp("L"),
            iloc.label("L"),
            iloc.ldm(A, preg(1)),  # available on the only path
            Instr(Op.RET, srcs=[preg(1)]),
        ]
        out, report = eliminate_redundant_mem_ops_global(code)
        assert report.loads_deleted == 1

    def test_load_after_diamond_where_both_arms_load(self):
        # Both branch arms load A into r1 -> the join's reload is redundant.
        code = [
            iloc.loadi(1, preg(0)),
            iloc.cbr(preg(0), "T", "F"),
            iloc.label("T"),
            iloc.ldm(A, preg(1)),
            iloc.jmp("E"),
            iloc.label("F"),
            iloc.ldm(A, preg(1)),
            iloc.label("E"),
            iloc.ldm(A, preg(1)),
            Instr(Op.RET, srcs=[preg(1)]),
        ]
        out, report = eliminate_redundant_mem_ops_global(code)
        assert report.loads_deleted == 1
        assert sum(1 for i in out if i.op is Op.LDM) == 2

    def test_one_arm_only_keeps_reload(self):
        code = [
            iloc.loadi(1, preg(0)),
            iloc.cbr(preg(0), "T", "E"),
            iloc.label("T"),
            iloc.ldm(A, preg(1)),
            iloc.label("E"),
            iloc.ldm(A, preg(1)),  # NOT available on the fall-through path
            Instr(Op.RET, srcs=[preg(1)]),
        ]
        out, report = eliminate_redundant_mem_ops_global(code)
        assert report.loads_deleted == 0

    def test_different_holders_on_arms_keeps_reload(self):
        code = [
            iloc.loadi(1, preg(0)),
            iloc.cbr(preg(0), "T", "F"),
            iloc.label("T"),
            iloc.ldm(A, preg(1)),
            iloc.jmp("E"),
            iloc.label("F"),
            iloc.ldm(A, preg(2)),
            iloc.label("E"),
            iloc.ldm(A, preg(1)),
            Instr(Op.RET, srcs=[preg(1)]),
        ]
        out, report = eliminate_redundant_mem_ops_global(code)
        assert report.loads_deleted == 0

    def test_loop_carried_availability(self):
        # The value is loaded before the loop and neither the register nor
        # the slot changes inside: the in-loop reload dies.
        code = [
            iloc.loadi(1, preg(2)),
            iloc.stm(A, preg(2)),
            iloc.ldm(A, preg(1)),
            iloc.label("H"),
            iloc.ldm(A, preg(1)),   # redundant on every iteration
            iloc.loadi(0, preg(0)),
            iloc.cbr(preg(0), "H", "X"),
            iloc.label("X"),
            Instr(Op.RET, srcs=[preg(1)]),
        ]
        out, report = eliminate_redundant_mem_ops_global(code)
        assert report.loads_deleted == 1

    def test_loop_with_interior_clobber_keeps_reload(self):
        code = [
            iloc.loadi(1, preg(2)),
            iloc.stm(A, preg(2)),
            iloc.ldm(A, preg(1)),
            iloc.label("H"),
            iloc.ldm(A, preg(1)),
            iloc.loadi(9, preg(1)),  # clobbers the holder inside the loop
            iloc.loadi(0, preg(0)),
            iloc.cbr(preg(0), "H", "X"),
            iloc.label("X"),
            Instr(Op.RET, srcs=[preg(0)]),
        ]
        out, report = eliminate_redundant_mem_ops_global(code)
        assert report.loads_deleted == 0

    def test_call_kills_global_across_blocks(self):
        code = [
            iloc.ldm(G, preg(1)),
            iloc.jmp("L"),
            iloc.label("L"),
            Instr(Op.CALL, callee="h"),
            iloc.ldm(G, preg(1)),  # must survive
            Instr(Op.RET, srcs=[preg(1)]),
        ]
        out, report = eliminate_redundant_mem_ops_global(code)
        assert report.loads_deleted == 0

    def test_copy_transfers_fact(self):
        code = [
            iloc.ldm(A, preg(1)),
            iloc.copy(preg(1), preg(2)),
            iloc.loadi(0, preg(1)),   # original holder clobbered
            iloc.ldm(A, preg(2)),     # but r2 still mirrors A
            Instr(Op.RET, srcs=[preg(2)]),
        ]
        out, report = eliminate_redundant_mem_ops_global(code)
        assert report.loads_deleted == 1


class TestAsRapPhase:
    @pytest.mark.parametrize("k", [3, 4])
    def test_behaviour_preserved(self, k):
        source = """
        int a[16];
        void main() {
            int i; int s; s = 0;
            for (i = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) { s = s + a[i]; } else { s = s - a[i]; }
            }
            print(s);
        }
        """
        prog = compile_source(source)
        reference = run_program(prog.reference_image())
        module = prog.fresh_module()
        result = allocate_rap(module.functions["main"], k, global_peephole=True)
        image = ProgramImage(
            list(module.globals.values()),
            {"main": FunctionImage("main", result.code, [])},
        )
        stats = run_program(image)
        assert stats.output == reference.output

    def test_never_worse_than_local(self):
        from repro.bench.harness import Harness
        from repro.bench.suite import program

        harness = Harness()
        bench = program("linpack")
        local = harness.run(bench, "rap", 3)
        globl = harness.run(bench, "rap", 3, global_peephole=True)
        assert globl.stats.total.loads <= local.stats.total.loads
