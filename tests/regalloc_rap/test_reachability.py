"""Unit tests for the CFG reachability helper used by spill insertion."""

from repro.cfg.graph import CFG
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg
from repro.regalloc.rap.spill_insert import _Reachability


def diamond():
    return [
        iloc.loadi(1, vreg(0)),          # 0
        iloc.cbr(vreg(0), "T", "F"),     # 1
        iloc.label("T"),                 # 2
        iloc.loadi(1, vreg(1)),          # 3
        iloc.jmp("E"),                   # 4
        iloc.label("F"),                 # 5
        iloc.loadi(2, vreg(1)),          # 6
        iloc.label("E"),                 # 7
        Instr(Op.RET, srcs=[vreg(1)]),   # 8
    ]


def loop():
    return [
        iloc.loadi(0, vreg(0)),          # 0
        iloc.label("H"),                 # 1
        iloc.loadi(1, vreg(1)),          # 2
        iloc.binary(Op.ADD, vreg(0), vreg(1), vreg(0)),  # 3
        iloc.cbr(vreg(0), "H", "X"),     # 4
        iloc.label("X"),                 # 5
        Instr(Op.RET),                   # 6
    ]


class TestReachability:
    def test_forward_within_block(self):
        cfg = CFG(diamond())
        reach = _Reachability(cfg)
        assert reach.reaches(cfg, 0, 1)
        assert not reach.reaches(cfg, 1, 0)

    def test_across_branch_arms(self):
        cfg = CFG(diamond())
        reach = _Reachability(cfg)
        assert reach.reaches(cfg, 0, 3)   # entry -> then
        assert reach.reaches(cfg, 0, 6)   # entry -> else
        assert reach.reaches(cfg, 3, 8)   # then -> join
        assert not reach.reaches(cfg, 3, 6)  # then arm cannot reach else arm

    def test_backward_through_loop_edge(self):
        cfg = CFG(loop())
        reach = _Reachability(cfg)
        # Later position reaches an earlier one through the back edge.
        assert reach.reaches(cfg, 3, 2)
        # Positions before the loop are unreachable from inside it.
        assert not reach.reaches(cfg, 3, 0)

    def test_same_position_not_reaching_without_cycle(self):
        cfg = CFG(diamond())
        reach = _Reachability(cfg)
        assert not reach.reaches(cfg, 3, 3)

    def test_same_position_reaching_with_cycle(self):
        cfg = CFG(loop())
        reach = _Reachability(cfg)
        assert reach.reaches(cfg, 3, 3)

    def test_memoization_consistent(self):
        cfg = CFG(loop())
        reach = _Reachability(cfg)
        first = reach.reaches(cfg, 3, 2)
        second = reach.reaches(cfg, 3, 2)
        assert first == second == True  # noqa: E712
