"""Reproduction of the paper's Figure 3: building a region's graph.

The scenario (paper §3.1.1):

    S1: a = b              -- parent region R1's own code
    S2: c = a + c
    if (P)
        S3: a = b + c      -- subregion R2
    else {
        S4: e = 10         -- subregion R3
        S5: a = e
        S6: a = a + b
    }

with a register ``d`` that is live through the region but never referenced
in it.  The claims checked:

* (c) the parent graph contains nodes for a, b, c only — ``d`` is omitted
  "so that referenced virtual registers are given priority when coloring";
* (b) in R3's combined graph, a and e share a node (the coloring combined
  them);
* (a) in R2's combined graph, a and b are *not* combined, "because there
  are uses of both a and b outside of the subregion" (the global/global
  rule);
* (d) the full region graph merges the subregion nodes with the parent's
  by shared register, and still excludes ``d`` (its interference is
  enforced one level up, by Figure 4's boundary rule — also checked).
"""

from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg
from repro.pdg.graph import PDGFunction
from repro.pdg.liveness import FunctionAnalysis
from repro.pdg.nodes import Predicate, Region
from repro.regalloc.interference import InterferenceGraph
from repro.regalloc.rap.allocator import RAPContext
from repro.regalloc.rap.conflicts import add_region_conflicts, add_subregion_conflicts
from repro.regalloc.rap.region_alloc import allocate_region

A, B, C, E, D, P = (vreg(i) for i in range(6))


def build_figure3():
    """The function: defs of b, c, p, d; region R1 with the S1..S6 code;
    uses of a and d afterwards (making a global and d live-through)."""
    func = PDGFunction("fig3", "void", [])
    func.reserve_vregs(10)

    r2 = Region(kind="branch", note="R2 (then)")
    r2.items.append(iloc.binary(Op.ADD, B, C, A))          # S3: a = b + c

    r3 = Region(kind="branch", note="R3 (else)")
    r3.items.append(iloc.loadi(10, E))                     # S4: e = 10
    r3.items.append(iloc.copy(E, A))                       # S5: a = e
    r3.items.append(iloc.binary(Op.ADD, A, B, A))          # S6: a = a + b

    r1 = Region(kind="block", note="R1")
    r1.items.append(iloc.copy(B, A))                       # S1: a = b
    r1.items.append(iloc.binary(Op.ADD, A, C, C))          # S2: c = a + c
    r1.items.append(Predicate(P, r2, r3))

    entry = func.entry
    entry.items.append(iloc.loadi(1, B))
    entry.items.append(iloc.loadi(2, C))
    entry.items.append(iloc.loadi(3, P))
    entry.items.append(iloc.loadi(4, D))
    entry.items.append(r1)
    entry.items.append(Instr(Op.PRINT, srcs=[A]))
    entry.items.append(Instr(Op.PRINT, srcs=[D]))
    return func, r1, r2, r3


def allocate_subregions(func, r1, k=3):
    ctx = RAPContext(func, k)
    for sub in r1.subregions():
        ctx.sub_graphs[id(sub)] = allocate_region(ctx, sub)
    return ctx


class TestParentGraph:
    def test_nodes_are_parent_referenced_registers_only(self):
        func, r1, _, _ = build_figure3()
        graph = InterferenceGraph()
        add_region_conflicts(r1, graph, FunctionAnalysis(func))
        regs = graph.registers()
        assert {A, B, C, P} <= regs
        assert D not in regs          # live through, not referenced: omitted
        assert E not in regs          # subregion-only

    def test_a_and_c_interfere(self):
        func, r1, _, _ = build_figure3()
        graph = InterferenceGraph()
        add_region_conflicts(r1, graph, FunctionAnalysis(func))
        assert graph.interferes(A, C)

    def test_b_and_c_interfere(self):
        func, r1, _, _ = build_figure3()
        graph = InterferenceGraph()
        add_region_conflicts(r1, graph, FunctionAnalysis(func))
        assert graph.interferes(B, C)

    def test_copy_operands_do_not_interfere(self):
        # S1 is a = b; nothing else makes them simultaneously live in R1's
        # own code beyond the live-in rule (b and a are not both live-in).
        func, r1, _, _ = build_figure3()
        graph = InterferenceGraph()
        add_region_conflicts(r1, graph, FunctionAnalysis(func))
        assert not graph.interferes(A, B)

    def test_live_in_referenced_pairs_interfere(self):
        # b, c, p are all live on entrance to R1 and referenced in it.
        func, r1, _, _ = build_figure3()
        graph = InterferenceGraph()
        add_region_conflicts(r1, graph, FunctionAnalysis(func))
        assert graph.interferes(B, P)
        assert graph.interferes(C, P)


class TestSubregionGraphs:
    def test_r3_combines_a_and_e(self):
        func, r1, _, r3 = build_figure3()
        ctx = allocate_subregions(func, r1)
        combined = ctx.sub_graphs[id(r3)]
        assert combined.node_of(A) is combined.node_of(E)

    def test_r2_does_not_combine_a_and_b(self):
        # Both are global to R2 (used outside), so the global/global rule
        # keeps their colors distinct even though they do not interfere
        # inside R2.
        func, r1, r2, _ = build_figure3()
        ctx = allocate_subregions(func, r1)
        combined = ctx.sub_graphs[id(r2)]
        assert combined.node_of(A) is not combined.node_of(B)

    def test_combined_graphs_bounded_by_k(self):
        func, r1, r2, r3 = build_figure3()
        ctx = allocate_subregions(func, r1, k=3)
        assert len(ctx.sub_graphs[id(r2)].nodes) <= 3
        assert len(ctx.sub_graphs[id(r3)].nodes) <= 3


class TestFullRegionGraph:
    def build_full(self):
        func, r1, r2, r3 = build_figure3()
        ctx = allocate_subregions(func, r1)
        graph = InterferenceGraph()
        analysis = ctx.analysis()
        add_region_conflicts(r1, graph, analysis)
        add_subregion_conflicts(r1, graph, ctx.sub_graphs, analysis)
        return func, graph

    def test_subregion_nodes_merged_with_parent_by_register(self):
        _, graph = self.build_full()
        # a (parent) and e (R3) ended up in one node via R3's combining.
        assert graph.node_of(A) is graph.node_of(E)

    def test_d_still_not_in_region_graph(self):
        _, graph = self.build_full()
        assert D not in graph

    def test_d_constrained_one_level_up(self):
        # When the *entry* region incorporates R1's combined graph, d is
        # live into R1 but not referenced there, so Figure 4's second loop
        # makes d interfere with every R1 node.
        func, r1, r2, r3 = build_figure3()
        ctx = RAPContext(func, 3)
        ctx.sub_graphs[id(r1)] = allocate_region(ctx, r1)
        entry_graph = InterferenceGraph()
        analysis = ctx.analysis()
        add_region_conflicts(func.entry, entry_graph, analysis)
        add_subregion_conflicts(
            func.entry, entry_graph, ctx.sub_graphs, analysis
        )
        assert D in entry_graph
        for other in (A, B, C):
            assert entry_graph.interferes(D, other)
