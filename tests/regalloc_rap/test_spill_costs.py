"""Tests for Figure 5's spill-cost calculation."""

from repro.compiler import compile_source
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg
from repro.pdg.graph import PDGFunction
from repro.pdg.liveness import FunctionAnalysis
from repro.pdg.nodes import Region
from repro.regalloc.coloring import INFINITE_COST
from repro.regalloc.interference import InterferenceGraph
from repro.regalloc.rap.conflicts import add_region_conflicts, add_subregion_conflicts
from repro.regalloc.rap.spill_costs import calc_spill_costs, compute_global_nodes

X, Y, Z = vreg(0), vreg(1), vreg(2)


def straightline_func():
    """Entry region with direct code: x = 1; y = 2; print(x+y) and one
    subregion that uses x."""
    func = PDGFunction("g", "void", [])
    func.reserve_vregs(10)
    sub = Region(kind="stmt", note="sub")
    sub.items.append(Instr(Op.PRINT, srcs=[X]))
    entry = func.entry
    entry.items.append(iloc.loadi(1, X))
    entry.items.append(iloc.loadi(2, Y))
    entry.items.append(iloc.binary(Op.ADD, X, Y, Z))
    entry.items.append(sub)
    entry.items.append(Instr(Op.PRINT, srcs=[Z]))
    return func, entry, sub


def costed_graph(func, region, spilled=frozenset()):
    analysis = FunctionAnalysis(func)
    graph = InterferenceGraph()
    add_region_conflicts(region, graph, analysis)
    add_subregion_conflicts(
        region, graph, {}, analysis
    )
    global_nodes = compute_global_nodes(region, graph, analysis)
    calc_spill_costs(region, graph, analysis, set(spilled), global_nodes)
    return graph, global_nodes


class TestReferenceCounting:
    def test_cost_is_refs_over_degree(self):
        func, entry, _ = straightline_func()
        graph, _ = costed_graph(func, entry)
        # y: 2 references (def + use), some degree; check the ratio shape.
        y_node = graph.node_of(Y)
        refs = 2
        from repro.regalloc.coloring import effective_degree

        expected = refs / max(effective_degree(y_node, set()), 1)
        assert y_node.spill_cost == expected

    def test_more_references_cost_more(self):
        func, entry, _ = straightline_func()
        graph, _ = costed_graph(func, entry)
        # Raw cost (cost * degree) of x exceeds y's: x has the same two
        # parent references plus the subregion boundary increment.
        x_node, y_node = graph.node_of(X), graph.node_of(Y)
        assert x_node.spill_cost > 0 and y_node.spill_cost > 0


class TestInfiniteCosts:
    def test_already_spilled_marked_infinite(self):
        func, entry, _ = straightline_func()
        graph, _ = costed_graph(func, entry, spilled={Y})
        assert graph.node_of(Y).spill_cost >= INFINITE_COST / 100

    def test_local_to_subregion_marked_infinite(self):
        # A register referenced only inside one subregion cannot usefully
        # be spilled at the parent.
        func = PDGFunction("h", "void", [])
        func.reserve_vregs(10)
        sub = Region(kind="stmt")
        sub.items.append(iloc.loadi(1, X))
        sub.items.append(Instr(Op.PRINT, srcs=[X]))
        func.entry.items.append(sub)
        func.entry.items.append(iloc.loadi(2, Y))
        func.entry.items.append(Instr(Op.PRINT, srcs=[Y]))

        analysis = FunctionAnalysis(func)
        graph = InterferenceGraph()
        add_region_conflicts(func.entry, graph, analysis)
        # Manually give the subregion a trivial combined graph.
        sub_graph = InterferenceGraph()
        sub_graph.ensure(X)
        add_subregion_conflicts(
            func.entry, graph, {id(sub): sub_graph}, analysis
        )
        global_nodes = compute_global_nodes(func.entry, graph, analysis)
        calc_spill_costs(func.entry, graph, analysis, set(), global_nodes)
        assert graph.node_of(X).spill_cost >= INFINITE_COST / 100
        assert graph.node_of(Y).spill_cost < INFINITE_COST / 100


class TestBoundaryIncrements:
    def test_live_into_used_subregion_adds_cost(self):
        func, entry, sub = straightline_func()
        graph, _ = costed_graph(func, entry)
        x_node, y_node = graph.node_of(X), graph.node_of(Y)
        # x: 2 parent refs (def + use) + 1 boundary increment (live into
        # the subregion and used there) = 3.
        # y: 2 refs, no boundary.  Compare the raw (pre-division) costs.
        x_raw = x_node.spill_cost * max(
            _adjusted_degree(graph, func, entry, x_node), 1
        )
        y_raw = y_node.spill_cost * max(
            _adjusted_degree(graph, func, entry, y_node), 1
        )
        assert round(x_raw) == 3
        assert round(y_raw) == 2


def _adjusted_degree(graph, func, region, node):
    from repro.regalloc.coloring import effective_degree

    analysis = FunctionAnalysis(func)
    global_nodes = compute_global_nodes(region, graph, analysis)
    return effective_degree(node, global_nodes)


class TestGlobalNodes:
    def test_compute_global_nodes(self):
        source = """
        void f() {
            int x; int t;
            x = 1;
            t = x + 2;
            print(t);
        }
        """
        func = compile_source(source).module.functions["f"]
        analysis = FunctionAnalysis(func)
        # Statement region of `t = x + 2`.
        stmt = [i for i in func.entry.items if isinstance(i, Region)][1]
        graph = InterferenceGraph()
        add_region_conflicts(stmt, graph, analysis)
        global_nodes = compute_global_nodes(stmt, graph, analysis)
        # x and t are referenced outside the statement; the expression
        # temporary is local.
        global_regs = {reg for node in global_nodes for reg in node.members}
        local_regs = graph.registers() - global_regs
        assert len(global_regs) >= 2
        assert local_regs  # the literal's temporary
