"""Unit tests for the availability lattice of the global peephole."""

from repro.ir.iloc import Instr, Op, Symbol, preg
from repro.ir import iloc
from repro.regalloc.rap.global_opt import _meet, _transfer

A = Symbol("f.a")
B = Symbol("f.b")
G = Symbol("g", "global")


class TestMeet:
    def test_agreeing_states_intersect(self):
        left = {A: (preg(1), True), B: (preg(2), True)}
        right = {A: (preg(1), True)}
        assert _meet([left, right]) == {A: (preg(1), True)}

    def test_disagreeing_holders_dropped(self):
        left = {A: (preg(1), True)}
        right = {A: (preg(2), True)}
        assert _meet([left, right]) == {}

    def test_synced_flag_anded(self):
        left = {A: (preg(1), True)}
        right = {A: (preg(1), False)}
        assert _meet([left, right]) == {A: (preg(1), False)}

    def test_top_predecessors_skipped(self):
        known = {A: (preg(1), True)}
        assert _meet([None, known, None]) == known

    def test_all_top_gives_bottom(self):
        assert _meet([None, None]) == {}


class TestTransfer:
    def test_ldm_establishes_fact(self):
        state = {}
        _transfer(state, iloc.ldm(A, preg(1)))
        assert state == {A: (preg(1), True)}

    def test_ldm_kills_other_facts_of_dst(self):
        state = {B: (preg(1), True)}
        _transfer(state, iloc.ldm(A, preg(1)))
        assert B not in state and state[A] == (preg(1), True)

    def test_stm_establishes_fact(self):
        state = {}
        _transfer(state, iloc.stm(A, preg(2)))
        assert state == {A: (preg(2), True)}

    def test_def_kills_holder(self):
        state = {A: (preg(1), True)}
        _transfer(state, iloc.loadi(9, preg(1)))
        assert state == {}

    def test_unrelated_def_keeps_facts(self):
        state = {A: (preg(1), True)}
        _transfer(state, iloc.loadi(9, preg(2)))
        assert state == {A: (preg(1), True)}

    def test_call_kills_globals_only(self):
        state = {A: (preg(1), True), G: (preg(2), True)}
        _transfer(state, Instr(Op.CALL, callee="h"))
        assert A in state and G not in state

    def test_call_result_kills_holder(self):
        state = {A: (preg(1), True)}
        _transfer(state, Instr(Op.CALL, callee="h", dst=preg(1)))
        assert state == {}

    def test_copy_propagates_one_mirror(self):
        state = {A: (preg(1), True)}
        _transfer(state, iloc.copy(preg(1), preg(2)))
        assert state[A][0] in (preg(1), preg(2))

    def test_heap_store_keeps_symbolic_facts(self):
        state = {A: (preg(1), True)}
        _transfer(state, iloc.store(preg(2), preg(3)))
        assert state == {A: (preg(1), True)}
