"""Unit tests for the Figure-2 per-region allocation driver."""

import pytest

from repro.compiler import compile_source
from repro.ir.iloc import Op
from repro.regalloc.chaitin import AllocationError
from repro.regalloc.rap.allocator import RAPContext
from repro.regalloc.rap.region_alloc import allocate_region

EASY = """
void main() {
    int x;
    x = 1;
    print(x + 2);
}
"""

LOOPY = """
void main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 4; i = i + 1) { s = s + i; }
    print(s);
}
"""

PRESSURE = """
void main() {
    int a; int b; int c; int d; int e;
    a = 1; b = 2; c = 3; d = 4; e = 5;
    print(a + b + c + d + e);
    print(e - d - c - b - a);
}
"""


def run_phase1(source, k):
    func = compile_source(source).fresh_module().functions["main"]
    ctx = RAPContext(func, k)
    summary = allocate_region(ctx, func.entry)
    return ctx, summary


class TestDriver:
    def test_entry_coloring_recorded(self):
        ctx, _ = run_phase1(EASY, 3)
        assert ctx.final_coloring is not None
        assert ctx.final_graph is not None

    def test_combined_entry_graph_bounded_by_k(self):
        for k in (3, 5):
            _, summary = run_phase1(PRESSURE, k)
            assert len(summary.nodes) <= k

    def test_all_subregion_graphs_consumed(self):
        ctx, _ = run_phase1(LOOPY, 4)
        # Every non-loop graph was deleted after its parent incorporated
        # it; loop graphs were moved to the retention table.
        assert ctx.sub_graphs == {} or all(
            False for _ in ctx.sub_graphs
        )

    def test_loop_graphs_retained_for_motion(self):
        ctx, _ = run_phase1(LOOPY, 4)
        assert len(ctx.loop_graphs) == 1
        (region, graph), = ctx.loop_graphs.values()
        assert region.is_loop
        assert graph.nodes

    def test_no_spills_without_pressure(self):
        ctx, _ = run_phase1(EASY, 8)
        assert ctx.spill_log == []

    def test_spill_log_under_pressure(self):
        ctx, _ = run_phase1(PRESSURE, 3)
        assert ctx.spill_log
        for region_name, victims in ctx.spill_log:
            assert region_name.startswith("R")
            assert victims

    def test_entry_graph_covers_every_register(self):
        ctx, _ = run_phase1(LOOPY, 4)
        referenced = {
            reg for reg in ctx.func.referenced_regs() if reg.is_virtual
        }
        colored = {
            reg
            for node in ctx.final_coloring.colors
            for reg in node.members
        }
        assert referenced <= colored

    def test_coloring_is_proper_on_final_graph(self):
        ctx, _ = run_phase1(PRESSURE, 3)
        colors = ctx.final_coloring.colors
        for node, color in colors.items():
            for neighbor in node.adj:
                if neighbor in colors:
                    assert colors[neighbor] != color

    def test_impossible_pressure_raises_cleanly(self):
        # One instruction can keep at most 3 registers simultaneously
        # busy, so k=3 always converges; verify the guard exists by
        # checking the exception type is importable and the driver uses a
        # bounded loop rather than hanging (sanity compile at k=3).
        run_phase1(PRESSURE, 3)
        assert issubclass(AllocationError, RuntimeError)
