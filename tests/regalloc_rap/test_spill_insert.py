"""Tests for hierarchical spill insertion (§3.1.4)."""

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.iloc import Op, Reg
from repro.pdg.linearize import linearize
from repro.pdg.nodes import Region
from repro.regalloc.rap.allocator import RAPContext
from repro.regalloc.rap.spill_insert import spill_register

SRC = """
void main() {
    int a; int b;
    a = 70;
    b = 80;
    if (a > b) { print(a + 1); } else { print(b + 1); }
    print(a);
    print(b);
}
"""


def build():
    prog = compile_source(SRC)
    module = prog.fresh_module()
    func = module.functions["main"]
    return prog, module, func


def home_of(func, marker):
    for instr in func.walk_instrs():
        if instr.op is Op.LOADI and instr.imm == marker:
            loadi = instr
    for instr in func.walk_instrs():
        if instr.op is Op.I2I and instr.srcs[0] == loadi.dst:
            return instr.dst
    raise AssertionError("marker not found")


def run_reference_equivalent(prog, module):
    reference = run_program(prog.reference_image())
    functions = {
        name: FunctionImage(name, list(linearize(f).instrs), param_slots(f))
        for name, f in module.functions.items()
    }
    stats = run_program(ProgramImage(list(module.globals.values()), functions))
    assert stats.output == reference.output
    return stats


class TestSpillAtEntry:
    def test_spilling_at_entry_preserves_behaviour(self):
        prog, module, func = build()
        a = home_of(func, 70)
        ctx = RAPContext(func, 3)
        spill_register(ctx, func.entry, a)
        run_reference_equivalent(prog, module)

    def test_victim_renamed_away_in_region(self):
        _, _, func = build()
        a = home_of(func, 70)
        ctx = RAPContext(func, 3)
        spill_register(ctx, func.entry, a)
        for instr in func.walk_instrs():
            if instr.op in (Op.LDM, Op.STM):
                continue
            assert a not in instr.regs()

    def test_renames_recorded_with_origin(self):
        _, _, func = build()
        a = home_of(func, 70)
        ctx = RAPContext(func, 3)
        spill_register(ctx, func.entry, a)
        assert ctx.origin
        assert all(origin == a for origin in ctx.origin.values())

    def test_slot_named_after_original_register(self):
        _, _, func = build()
        a = home_of(func, 70)
        ctx = RAPContext(func, 3)
        spill_register(ctx, func.entry, a)
        slots = {
            instr.addr.name
            for instr in func.walk_instrs()
            if instr.op in (Op.LDM, Op.STM) and ".%v" in instr.addr.name
        }
        assert slots == {f"main.{a}"}

    def test_store_follows_definition(self):
        _, _, func = build()
        a = home_of(func, 70)
        ctx = RAPContext(func, 3)
        spill_register(ctx, func.entry, a)
        # Find the statement region of `a = 70` and check a store follows
        # the renamed copy inside it.
        for region in func.walk_regions():
            instrs = [i for i in region.items if not isinstance(i, Region)]
            for pos, instr in enumerate(instrs):
                if instr.op is Op.I2I and pos + 1 < len(instrs):
                    following = instrs[pos + 1]
                    if following.op is Op.STM and ".%v" in following.addr.name:
                        return
        raise AssertionError("no store-after-definition found")

    def test_loads_precede_uses_in_subregions(self):
        prog, module, func = build()
        a = home_of(func, 70)
        ctx = RAPContext(func, 3)
        spill_register(ctx, func.entry, a)
        loads = [
            i
            for i in func.walk_instrs()
            if i.op is Op.LDM and ".%v" in i.addr.name
        ]
        assert len(loads) >= 2  # one per subregion that uses a


class TestSpillAtSubregion:
    def test_spill_local_to_one_region_only(self):
        # Spilling inside the if-statement's region must leave the outer
        # uses of `a` in a register (the paper's local-spill selling point).
        prog, module, func = build()
        a = home_of(func, 70)
        if_region = next(
            r
            for r in func.entry.items
            if isinstance(r, Region)
            and a in r.referenced_regs()
            and r.subregions()
        )
        ctx = RAPContext(func, 3)
        spill_register(ctx, if_region, a)
        run_reference_equivalent(prog, module)

    def test_patch_up_stores_outside_region(self):
        # The definition of `a` is outside the spilled region, so §3.1.4's
        # recursive patch-up must add a store after it.
        _, _, func = build()
        a = home_of(func, 70)
        if_region = next(
            r
            for r in func.entry.items
            if isinstance(r, Region)
            and a in r.referenced_regs()
            and r.subregions()
        )
        ctx = RAPContext(func, 3)
        spill_register(ctx, if_region, a)
        stores_of_a = [
            i
            for i in func.walk_instrs()
            if i.op is Op.STM
            and ".%v" in i.addr.name
            and i.srcs[0] == a
        ]
        assert stores_of_a, "outside definition must store to the slot"

    def test_outside_uses_keep_register(self):
        # After a subregion-local spill, the trailing `print(a)` still
        # reads the register (not the slot): a is only spilled locally.
        prog, module, func = build()
        a = home_of(func, 70)
        if_region = next(
            r
            for r in func.entry.items
            if isinstance(r, Region)
            and a in r.referenced_regs()
            and r.subregions()
        )
        ctx = RAPContext(func, 3)
        spill_register(ctx, if_region, a)
        prints = [i for i in func.walk_instrs() if i.op is Op.PRINT]
        assert any(a in i.regs() for i in prints)
