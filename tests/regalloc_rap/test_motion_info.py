"""Unit tests for motion's metadata collection (collect_loop_info)."""

from repro.compiler import compile_source
from repro.ir.iloc import Op, Symbol
from repro.regalloc.rap.allocator import RAPContext
from repro.regalloc.rap.motion import collect_loop_info
from repro.regalloc.rap.region_alloc import allocate_region


def phase1(source, k):
    func = compile_source(source).fresh_module().functions["main"]
    ctx = RAPContext(func, k)
    allocate_region(ctx, func.entry)
    return func, ctx


class TestCollectLoopInfo:
    def test_loops_enumerated_outermost_first(self):
        source = """
        void main() {
            int i; int j; int s; s = 0;
            for (i = 0; i < 2; i = i + 1) {
                for (j = 0; j < 2; j = j + 1) { s = s + 1; }
            }
            print(s);
        }
        """
        func, ctx = phase1(source, 8)
        infos = collect_loop_info(func, set(ctx.slots.values()))
        assert len(infos) == 2
        outer, inner = infos
        # Pre-order: the outer loop's subtree strictly contains the inner's.
        assert set(i for i in inner.referenced_vregs) <= set(
            outer.referenced_vregs
        )

    def test_only_allocator_slots_collected(self):
        # Arg slots and global symbols are never motion candidates.
        source = """
        int g;
        void main() {
            int i;
            for (i = 0; i < 3; i = i + 1) { g = g + i; }
            print(g);
        }
        """
        func, ctx = phase1(source, 8)
        infos = collect_loop_info(func, set(ctx.slots.values()))
        (info,) = infos
        for slot in info.slot_instrs:
            assert slot in set(ctx.slots.values())

    def test_no_spills_means_no_slot_instrs(self):
        source = """
        void main() {
            int i; int s; s = 0;
            for (i = 0; i < 3; i = i + 1) { s = s + i; }
            print(s);
        }
        """
        func, ctx = phase1(source, 8)
        infos = collect_loop_info(func, set(ctx.slots.values()))
        assert all(not info.slot_instrs for info in infos)

    def test_referenced_vregs_cover_loop_code(self):
        source = """
        void main() {
            int i; int s; s = 0;
            for (i = 0; i < 3; i = i + 1) { s = s + i * 2; }
            print(s);
        }
        """
        func, ctx = phase1(source, 8)
        (info,) = collect_loop_info(func, set(ctx.slots.values()))
        for instr in info.loop.walk_instrs():
            for reg in instr.regs():
                assert reg in info.referenced_vregs
