"""Tests for phase 3: Figure 6's five load/store elimination patterns."""

from repro.ir import iloc
from repro.ir.iloc import Instr, Op, Symbol, preg
from repro.regalloc.rap.peephole import eliminate_redundant_mem_ops

A = Symbol("f.%v1")          # a spill slot ("address 20" in Figure 6)
B = Symbol("f.%v2")
G = Symbol("g", "global")    # a global scalar


def ops(code):
    return [i.op for i in code]


class TestFigure6Patterns:
    def test_pattern1_reload_same_register_deleted(self):
        # ldm r2, 20 ... no redef of r2 ... ldm r2, 20  -> delete second
        code = [
            iloc.ldm(A, preg(2)),
            iloc.loadi(1, preg(0)),
            iloc.ldm(A, preg(2)),
            Instr(Op.RET, srcs=[preg(2)]),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.loads_deleted == 1
        assert ops(out) == [Op.LDM, Op.LOADI, Op.RET]

    def test_pattern2_reload_other_register_becomes_copy(self):
        # ldm r2, 20 ... ldm r3, 20  -> mv r3, r2
        code = [
            iloc.ldm(A, preg(2)),
            iloc.ldm(A, preg(3)),
            Instr(Op.RET, srcs=[preg(3)]),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.loads_to_copies == 1
        assert ops(out) == [Op.LDM, Op.I2I, Op.RET]
        copy = out[1]
        assert copy.srcs == [preg(2)] and copy.dst == preg(3)

    def test_pattern3_store_back_after_load_deleted(self):
        # ldm r2, 20 ... no redef ... stm 20, r2  -> delete stm
        code = [
            iloc.ldm(A, preg(2)),
            iloc.loadi(5, preg(0)),
            iloc.stm(A, preg(2)),
            Instr(Op.RET),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.stores_deleted == 1
        assert ops(out) == [Op.LDM, Op.LOADI, Op.RET]

    def test_pattern4_repeated_store_deleted(self):
        # stm 20, r2 ... no redef ... stm 20, r2  -> delete second
        code = [
            iloc.loadi(5, preg(2)),
            iloc.stm(A, preg(2)),
            iloc.loadi(1, preg(0)),
            iloc.stm(A, preg(2)),
            Instr(Op.RET),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.stores_deleted == 1
        assert ops(out) == [Op.LOADI, Op.STM, Op.LOADI, Op.RET]

    def test_pattern5_load_after_store_deleted(self):
        # stm 20, r2 ... no redef ... ldm r2, 20  -> delete ldm
        code = [
            iloc.loadi(5, preg(2)),
            iloc.stm(A, preg(2)),
            iloc.ldm(A, preg(2)),
            Instr(Op.RET, srcs=[preg(2)]),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.loads_deleted == 1
        assert ops(out) == [Op.LOADI, Op.STM, Op.RET]

    def test_pattern5_other_register_becomes_copy(self):
        # stm 20, r2 ... ldm r3, 20  -> mv r3, r2 (the (2)-style variant)
        code = [
            iloc.loadi(5, preg(2)),
            iloc.stm(A, preg(2)),
            iloc.ldm(A, preg(3)),
            Instr(Op.RET, srcs=[preg(3)]),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.loads_to_copies == 1
        assert out[2].op is Op.I2I


class TestSafetyConditions:
    def test_redefinition_between_blocks_forwarding(self):
        # A redefinition of r2 kills the fact: the reload must survive.
        code = [
            iloc.ldm(A, preg(2)),
            iloc.loadi(9, preg(2)),  # redef of r2
            iloc.ldm(A, preg(2)),
            Instr(Op.RET, srcs=[preg(2)]),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.total == 0
        assert len(out) == len(code)

    def test_intervening_store_to_same_slot_kills(self):
        code = [
            iloc.ldm(A, preg(2)),
            iloc.loadi(9, preg(3)),
            iloc.stm(A, preg(3)),   # slot now holds r3's value
            iloc.ldm(A, preg(2)),   # must survive (value changed)
            Instr(Op.RET, srcs=[preg(2)]),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.loads_deleted == 0
        # ... but the reload can become a copy from r3 (pattern 2).
        assert report.loads_to_copies == 1

    def test_stores_to_different_slots_do_not_interfere(self):
        code = [
            iloc.loadi(1, preg(1)),
            iloc.loadi(2, preg(2)),
            iloc.stm(A, preg(1)),
            iloc.stm(B, preg(2)),
            iloc.stm(A, preg(1)),  # still redundant
            Instr(Op.RET),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.stores_deleted == 1

    def test_facts_die_at_basic_block_boundaries(self):
        code = [
            iloc.ldm(A, preg(2)),
            iloc.jmp("L"),
            iloc.label("L"),
            iloc.ldm(A, preg(2)),  # different block: must survive
            Instr(Op.RET, srcs=[preg(2)]),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.total == 0

    def test_call_kills_global_but_not_spill_slots(self):
        code = [
            iloc.ldm(A, preg(1)),   # spill slot: survives the call
            iloc.ldm(G, preg(2)),   # global scalar: killed by the call
            Instr(Op.CALL, callee="h"),
            iloc.ldm(A, preg(1)),   # deletable
            iloc.ldm(G, preg(2)),   # must survive
            Instr(Op.RET, srcs=[preg(1)]),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.loads_deleted == 1
        surviving_global_loads = [
            i for i in out if i.op is Op.LDM and i.addr == G
        ]
        assert len(surviving_global_loads) == 2

    def test_call_result_kills_holder_register(self):
        code = [
            iloc.ldm(A, preg(1)),
            Instr(Op.CALL, callee="h", dst=preg(1)),  # clobbers r1
            iloc.ldm(A, preg(1)),  # must survive
            Instr(Op.RET, srcs=[preg(1)]),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.total == 0

    def test_heap_store_does_not_kill_slot_facts(self):
        # Register-addressed heap stores cannot alias symbolic slots.
        code = [
            iloc.ldm(A, preg(1)),
            iloc.loadi(4096, preg(2)),
            iloc.store(preg(1), preg(2)),  # heap store
            iloc.ldm(A, preg(1)),          # still deletable
            Instr(Op.RET, srcs=[preg(1)]),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.loads_deleted == 1

    def test_copy_replacement_tracks_new_holder(self):
        # After pattern 2 rewrites a load into a copy, the destination is a
        # valid holder for further eliminations.
        code = [
            iloc.ldm(A, preg(1)),
            iloc.ldm(A, preg(2)),   # -> copy r2 <- r1
            iloc.stm(A, preg(2)),   # now redundant (r2 mirrors A)
            Instr(Op.RET, srcs=[preg(2)]),
        ]
        out, report = eliminate_redundant_mem_ops(code)
        assert report.loads_to_copies == 1
        assert report.stores_deleted == 1

    def test_empty_code(self):
        out, report = eliminate_redundant_mem_ops([])
        assert out == [] and report.total == 0
