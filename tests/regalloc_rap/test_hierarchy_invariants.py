"""Cross-cutting invariants of the hierarchical allocation, checked over
the benchmark programs (not synthetic snippets).

These encode DESIGN.md §6's graph-structure guarantees:

* a region's combined graph never exceeds k nodes;
* merged nodes are never adjacent (enforced structurally, asserted here);
* at most one member of any merged node is global to its region;
* the final entry coloring is a proper coloring.
"""

import pytest

from repro.bench.suite import program
from repro.compiler import compile_source
from repro.pdg.liveness import FunctionAnalysis
from repro.regalloc.rap import allocate_rap
from repro.regalloc.rap.allocator import RAPContext
from repro.regalloc.rap.region_alloc import allocate_region

CASES = [("hsort", 3), ("queens", 3), ("sieve", 4), ("perm", 5)]


def contexts_for(bench_name, k):
    bench = program(bench_name)
    module = compile_source(bench.source()).fresh_module()
    out = []
    for func in module.functions.values():
        ctx = RAPContext(func, k)
        summary = allocate_region(ctx, func.entry)
        out.append((func, ctx, summary))
    return out


class TestCombinedGraphInvariants:
    @pytest.mark.parametrize("name,k", CASES)
    def test_entry_summary_bounded_by_k(self, name, k):
        for _, _, summary in contexts_for(name, k):
            assert len(summary.nodes) <= k
            summary.check_invariants()

    @pytest.mark.parametrize("name,k", CASES)
    def test_final_coloring_proper(self, name, k):
        for _, ctx, _ in contexts_for(name, k):
            colors = ctx.final_coloring.colors
            for node, color in colors.items():
                assert 0 <= color < k
                for neighbor in node.adj:
                    if neighbor in colors:
                        assert colors[neighbor] != color

    @pytest.mark.parametrize("name,k", CASES)
    def test_merged_nodes_never_adjacent_to_themselves(self, name, k):
        for _, ctx, _ in contexts_for(name, k):
            ctx.final_graph.check_invariants()

    @pytest.mark.parametrize("name,k", CASES)
    def test_loop_graph_members_single_global(self, name, k):
        # "At most one member of a merged node is global to its region" —
        # checked on the retained loop graphs, whose regions we still have.
        for func, ctx, _ in contexts_for(name, k):
            analysis = FunctionAnalysis(func)
            for region, graph in ctx.loop_graphs.values():
                for node in graph.nodes:
                    globals_in_node = [
                        reg
                        for reg in node.members
                        if analysis.is_global_to(reg, region)
                    ]
                    assert len(globals_in_node) <= 1, (
                        region.name,
                        node.members,
                    )


class TestRewriteCompleteness:
    @pytest.mark.parametrize("name,k", CASES)
    def test_every_register_physical_after_rap(self, name, k):
        bench = program(name)
        module = compile_source(bench.source()).fresh_module()
        for func in module.functions.values():
            result = allocate_rap(func, k)
            for instr in result.code:
                for reg in instr.regs():
                    assert reg.is_physical and reg.index < k
