"""The version-keyed FunctionAnalysis cache must be invisible in results.

``allocate_rap(..., paranoid_analysis=True)`` rebuilds a fresh snapshot
for every planning query (the pre-cache behaviour); the default path
reuses the round-start snapshot across all victims of one spill round.
Both must produce identical code, spill decisions, and assignments —
with strictly fewer analysis rebuilds on programs that spill.
"""

import pytest

from repro.bench.suite import program
from repro.compiler import compile_source
from repro.regalloc.rap.allocator import allocate_rap

#: (bench, k) cells known to spill heavily — where caching must both
#: preserve results and demonstrably cut rebuilds.
SPILLING_CELLS = [
    ("livermore", 3),
    ("linpack", 3),
    ("puzzle", 3),
    ("queens", 3),
]


def allocate_all(source, k, **kwargs):
    module = compile_source(source).fresh_module()
    results = {}
    for name, func in module.functions.items():
        results[name] = allocate_rap(func, k, **kwargs)
    return results


@pytest.mark.parametrize("bench_name,k", SPILLING_CELLS)
def test_cached_matches_paranoid(bench_name, k):
    source = program(bench_name).source()
    cached = allocate_all(source, k)
    paranoid = allocate_all(source, k, paranoid_analysis=True)
    total_cached = total_paranoid = 0
    spilled_somewhere = False
    for name in cached:
        ra, rb = cached[name], paranoid[name]
        assert [str(i) for i in ra.code] == [str(i) for i in rb.code], name
        # Region display names draw on a process-global counter, so
        # compare the spill decisions (victim sequences), not the labels.
        assert [v for _, v in ra.spill_log] == [v for _, v in rb.spill_log]
        assert ra.assignment == rb.assignment, name
        assert ra.analysis_builds <= rb.analysis_builds, name
        spilled_somewhere = spilled_somewhere or bool(ra.spill_log)
        total_cached += ra.analysis_builds
        total_paranoid += rb.analysis_builds
    assert spilled_somewhere, "cell no longer spills; pick another"
    assert total_cached < total_paranoid


def test_analysis_builds_surface_in_telemetry():
    source = program("queens").source()
    module = compile_source(source).fresh_module()
    func = module.functions["queens"]
    result = allocate_rap(func, 3)
    counters = result.telemetry()
    assert counters["analysis_builds"] == result.analysis_builds
    assert result.analysis_builds >= 1


def test_version_counter_tracks_mutation():
    source = program("hanoi").source()
    module = compile_source(source).fresh_module()
    func = module.functions["hanoi"]
    before = func.version
    allocate_rap(func, 3)
    assert func.version > before
