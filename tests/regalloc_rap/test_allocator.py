"""End-to-end tests for the full three-phase RAP allocator."""

import pytest

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.iloc import Op
from repro.ir.validate import check_allocated, check_wellformed
from repro.regalloc.rap import allocate_rap

PROGRAMS = {
    "straightline": """
        void main() { int a; int b; int c;
            a = 1; b = a + 2; c = a * b; print(c - b); }
    """,
    "pressure": """
        void main() {
            int a; int b; int c; int d; int e; int f;
            a = 1; b = 2; c = 3; d = 4; e = 5; f = 6;
            print(a + b + c + d + e + f);
            print(f - e - d - c - b - a);
        }
    """,
    "loops": """
        int x[16];
        void main() {
            int i; int j; int s;
            s = 0;
            for (i = 0; i < 4; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) {
                    x[i * 4 + j] = i + j;
                    s = s + x[i * 4 + j];
                }
            }
            print(s);
        }
    """,
    "recursion": """
        int ack(int m, int n) {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        void main() { print(ack(2, 3)); }
    """,
    "branches": """
        void main() {
            int i; int s; s = 0;
            for (i = 0; i < 20; i = i + 1) {
                if (i % 3 == 0) { s = s + i; }
                else { if (i % 3 == 1) { s = s - i; } else { s = s * 2 % 97; } }
            }
            print(s);
        }
    """,
    "globals": """
        int g = 10; float h;
        void bump() { g = g + 1; h = h + 0.5; }
        void main() { int i;
            for (i = 0; i < 5; i = i + 1) { bump(); }
            print(g); print(h); }
    """,
}


def run_with_rap(source, k, **kwargs):
    prog = compile_source(source)
    reference = run_program(prog.reference_image())
    module = prog.fresh_module()
    functions = {}
    results = {}
    for name, func in module.functions.items():
        result = allocate_rap(func, k, **kwargs)
        check_wellformed(result.code)
        check_allocated(result.code, k)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
        results[name] = result
    stats = run_program(ProgramImage(list(module.globals.values()), functions))
    assert stats.output == reference.output, (source[:40], k, kwargs)
    return stats, results


class TestBehaviourPreservation:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    @pytest.mark.parametrize("k", [3, 4, 5, 9])
    def test_output_matches_reference(self, name, k):
        run_with_rap(PROGRAMS[name], k)

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_phases_can_be_disabled_independently(self, name):
        run_with_rap(PROGRAMS[name], 3, enable_motion=False)
        run_with_rap(PROGRAMS[name], 3, enable_peephole=False)
        run_with_rap(
            PROGRAMS[name], 3, enable_motion=False, enable_peephole=False
        )

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_pessimistic_coloring_also_correct(self, name):
        run_with_rap(PROGRAMS[name], 4, optimistic=False)


class TestAllocationQuality:
    def test_no_copies_survive_without_pressure(self):
        # RAP's first-fit small-region coloring aligns copy operands.
        stats, _ = run_with_rap(PROGRAMS["loops"], 9)
        assert stats.total.copies == 0

    def test_spill_log_populated_under_pressure(self):
        _, results = run_with_rap(PROGRAMS["pressure"], 3)
        assert results["main"].spilled

    def test_no_spills_with_ample_registers(self):
        _, results = run_with_rap(PROGRAMS["pressure"], 9)
        assert not results["main"].spilled

    def test_more_registers_never_slower(self):
        cycles = [
            run_with_rap(PROGRAMS["loops"], k)[0].total.cycles
            for k in (3, 5, 9)
        ]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_peephole_never_hurts(self):
        for k in (3, 4):
            on, _ = run_with_rap(PROGRAMS["loops"], k)
            off, _ = run_with_rap(PROGRAMS["loops"], k, enable_peephole=False)
            assert on.total.cycles <= off.total.cycles

    def test_motion_reduces_loop_spill_traffic(self):
        on, _ = run_with_rap(PROGRAMS["loops"], 3)
        off, _ = run_with_rap(PROGRAMS["loops"], 3, enable_motion=False)
        assert on.total.cycles <= off.total.cycles

    def test_assignment_covers_every_virtual_register(self):
        prog = compile_source(PROGRAMS["branches"])
        func = prog.fresh_module().functions["main"]
        original = {r for r in func.referenced_regs() if r.is_virtual}
        result = allocate_rap(func, 4)
        assert original <= set(result.assignment)

    def test_k_below_three_rejected(self):
        prog = compile_source("void f() { }")
        with pytest.raises(ValueError):
            allocate_rap(prog.fresh_module().functions["f"], 2)


class TestTelemetry:
    def test_result_reports_rounds_and_phases(self):
        _, results = run_with_rap(PROGRAMS["pressure"], 3)
        result = results["main"]
        assert result.rounds >= 1
        assert result.k == 3
        assert result.peephole.total >= 0

    def test_spilled_reports_source_registers(self):
        _, results = run_with_rap(PROGRAMS["pressure"], 3)
        for reg in results["main"].spilled:
            assert reg.is_virtual
