"""Additional focused unit tests for Figure 4's two loops."""

from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg
from repro.pdg.graph import PDGFunction
from repro.pdg.liveness import FunctionAnalysis
from repro.pdg.nodes import Region
from repro.regalloc.interference import InterferenceGraph
from repro.regalloc.rap.conflicts import (
    add_region_conflicts,
    add_subregion_conflicts,
)

A, B, C, D = (vreg(i) for i in range(4))


def build_with_two_subregions():
    """entry: def A, def B; sub1 uses A; sub2 uses B; print(A+B) later —
    so A and B are live into the region and referenced only in subregions."""
    func = PDGFunction("u", "void", [])
    func.reserve_vregs(10)
    sub1 = Region(kind="stmt", note="uses A")
    sub1.items.append(Instr(Op.PRINT, srcs=[A]))
    sub2 = Region(kind="stmt", note="uses B")
    sub2.items.append(Instr(Op.PRINT, srcs=[B]))
    wrapper = Region(kind="block", note="wrapper")
    wrapper.items.append(sub1)
    wrapper.items.append(sub2)
    entry = func.entry
    entry.items.append(iloc.loadi(1, A))
    entry.items.append(iloc.loadi(2, B))
    entry.items.append(wrapper)
    entry.items.append(Instr(Op.PRINT, srcs=[A]))
    entry.items.append(Instr(Op.PRINT, srcs=[B]))
    return func, wrapper, sub1, sub2


def trivial_graph(*regs):
    graph = InterferenceGraph()
    for reg in regs:
        graph.ensure(reg)
    return graph


class TestFirstLoop:
    def test_live_in_subregion_only_registers_added_pairwise(self):
        # A and B are live into `wrapper` and referenced only inside its
        # subregions: Figure 4's first loop must add both to the graph and
        # make them interfere with each other.
        func, wrapper, sub1, sub2 = build_with_two_subregions()
        analysis = FunctionAnalysis(func)
        graph = InterferenceGraph()
        add_region_conflicts(wrapper, graph, analysis)
        assert A not in graph and B not in graph  # no direct references
        add_subregion_conflicts(
            wrapper,
            graph,
            {id(sub1): trivial_graph(A), id(sub2): trivial_graph(B)},
            analysis,
        )
        assert graph.interferes(A, B)

    def test_dead_on_entry_register_not_added(self):
        # D is never live into the wrapper: even if it were in Vars it
        # must not enter via the first loop.  (Here it is simply absent.)
        func, wrapper, sub1, sub2 = build_with_two_subregions()
        analysis = FunctionAnalysis(func)
        graph = InterferenceGraph()
        add_region_conflicts(wrapper, graph, analysis)
        add_subregion_conflicts(
            wrapper,
            graph,
            {id(sub1): trivial_graph(A), id(sub2): trivial_graph(B)},
            analysis,
        )
        assert D not in graph


class TestSecondLoop:
    def test_live_through_unreferenced_conflicts_with_subregion_nodes(self):
        # B is live into sub1 (used later) but not referenced in sub1:
        # Figure 4's second loop adds B x (every node of sub1's graph).
        func, wrapper, sub1, sub2 = build_with_two_subregions()
        analysis = FunctionAnalysis(func)
        graph = InterferenceGraph()
        add_region_conflicts(wrapper, graph, analysis)
        add_subregion_conflicts(
            wrapper,
            graph,
            {id(sub1): trivial_graph(A), id(sub2): trivial_graph(B)},
            analysis,
        )
        assert graph.interferes(B, A)

    def test_subregion_edges_imported(self):
        func, wrapper, sub1, sub2 = build_with_two_subregions()
        analysis = FunctionAnalysis(func)
        sub_graph = trivial_graph(A, C)
        sub_graph.add_edge(A, C)
        graph = InterferenceGraph()
        add_region_conflicts(wrapper, graph, analysis)
        add_subregion_conflicts(
            wrapper, graph, {id(sub1): sub_graph}, analysis
        )
        assert graph.interferes(A, C)

    def test_combined_groups_preserved_on_import(self):
        func, wrapper, sub1, sub2 = build_with_two_subregions()
        analysis = FunctionAnalysis(func)
        sub_graph = InterferenceGraph()
        sub_graph.add_group([A, C])  # subregion decided A and C share
        graph = InterferenceGraph()
        add_region_conflicts(wrapper, graph, analysis)
        add_subregion_conflicts(
            wrapper, graph, {id(sub1): sub_graph}, analysis
        )
        assert graph.node_of(A) is graph.node_of(C)
