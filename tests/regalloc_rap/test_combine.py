"""Tests for combining a colored region graph (paper §3.1.5)."""

import pytest

from repro.ir.iloc import vreg
from repro.regalloc.coloring import color_graph
from repro.regalloc.interference import InterferenceGraph
from repro.regalloc.rap.combine import combine


def colored_path_graph(n, k):
    """A path 0-1-2-...: easy to color, exercises combining."""
    graph = InterferenceGraph()
    for i in range(n):
        graph.ensure(vreg(i))
    for i in range(n - 1):
        graph.add_edge(vreg(i), vreg(i + 1))
    result = color_graph(graph, k)
    assert result.succeeded
    return graph, result


class TestCombine:
    def test_at_most_k_nodes(self):
        graph, result = colored_path_graph(9, 3)
        summary = combine(graph, result)
        assert len(summary.nodes) <= 3

    def test_all_registers_preserved(self):
        graph, result = colored_path_graph(9, 3)
        summary = combine(graph, result)
        assert summary.registers() == {vreg(i) for i in range(9)}

    def test_same_color_registers_share_nodes(self):
        graph, result = colored_path_graph(6, 3)
        summary = combine(graph, result)
        for node, color in result.colors.items():
            members = list(node.members)
            for reg in members:
                for other_node, other_color in result.colors.items():
                    if other_color == color:
                        other_reg = next(iter(other_node.members))
                        assert summary.node_of(reg) is summary.node_of(
                            other_reg
                        )

    def test_edges_lifted_between_color_groups(self):
        graph, result = colored_path_graph(4, 4)
        summary = combine(graph, result)
        # Original adjacency implies combined adjacency.
        for node in graph.nodes:
            for neighbor in node.adj:
                a = summary.node_of(next(iter(node.members)))
                b = summary.node_of(next(iter(neighbor.members)))
                if a is not b:
                    assert b in a.adj

    def test_combined_graph_invariants(self):
        graph, result = colored_path_graph(10, 4)
        summary = combine(graph, result)
        summary.check_invariants()

    def test_singleton_graph(self):
        graph = InterferenceGraph()
        graph.ensure(vreg(0))
        result = color_graph(graph, 3)
        summary = combine(graph, result)
        assert len(summary.nodes) == 1
        assert summary.node_of(vreg(0)).members == {vreg(0)}
