"""Tests for phase 2: spill-code motion out of loops (§3.2)."""

import pytest

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.iloc import Op
from repro.pdg.nodes import Region
from repro.regalloc.rap import allocate_rap

# Register pressure sits *outside* the loop: many values coexist before
# it, forcing `a` (live across and into the loop) to spill, while inside
# the loop a register is free to carry `a` for the whole loop -- the exact
# situation phase 2 is designed for.  (When every register is also busy
# inside the loop, motion correctly declines to hoist: the spilled value
# has no register to live in across iterations.)
LOOPY = """
void main() {
    int a; int i; int s;
    int p; int q; int r; int t; int u;
    a = 7;
    p = 1; q = 2; r = 3; t = 4; u = 5;
    print(p + q + r + t + u);
    print(p - q);
    print(r - t + u);
    s = 0;
    for (i = 0; i < 25; i = i + 1) { s = s + a; }
    print(s); print(a);
}
"""
MOTION_K = 4


def allocate(source, k, **kwargs):
    prog = compile_source(source)
    reference = run_program(prog.reference_image())
    module = prog.fresh_module()
    functions = {}
    results = {}
    for name, func in module.functions.items():
        result = allocate_rap(func, k, **kwargs)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
        results[name] = (result, func)
    stats = run_program(ProgramImage(list(module.globals.values()), functions))
    assert stats.output == reference.output
    return stats, results


class TestMotion:
    def test_motion_hoists_something_under_pressure(self):
        _, results = allocate(LOOPY, MOTION_K)
        result, _ = results["main"]
        assert result.motion.hoisted_slots, "expected loop spill hoisting"

    def test_spill_nodes_created_around_loop(self):
        _, results = allocate(LOOPY, MOTION_K)
        _, func = results["main"]
        spill_regions = [
            r for r in func.walk_regions() if r.kind == "spill"
        ]
        assert spill_regions
        for region in spill_regions:
            assert all(
                item.op in (Op.LDM, Op.STM)
                for item in region.items
                if not isinstance(item, Region)
            )

    def test_motion_reduces_executed_loads(self):
        with_motion, _ = allocate(LOOPY, MOTION_K)
        without_motion, _ = allocate(LOOPY, MOTION_K, enable_motion=False)
        assert with_motion.total.loads <= without_motion.total.loads
        assert with_motion.total.cycles < without_motion.total.cycles

    def test_hoisted_slot_not_reloaded_inside_loop(self):
        _, results = allocate(LOOPY, MOTION_K)
        result, func = results["main"]
        hoisted = {slot for _, slot in result.motion.hoisted_slots}
        assert hoisted
        loops = [r for r in func.walk_regions() if r.is_loop]
        for loop in loops:
            for instr in loop.walk_instrs():
                if instr.op in (Op.LDM, Op.STM):
                    assert instr.addr not in hoisted

    def test_motion_report_counts_consistent(self):
        _, results = allocate(LOOPY, MOTION_K)
        result, _ = results["main"]
        report = result.motion
        assert report.inserted_loads >= report.inserted_stores
        assert report.deleted_instrs >= len(report.hoisted_slots)

    def test_zero_trip_loop_preserves_memory(self):
        # The trailing store after a never-executed loop must write back
        # the original value, not garbage.
        source = """
        void main() {
            int a; int b; int c; int d; int i; int s;
            a = 1; b = 2; c = 3; d = 4;
            s = 0;
            for (i = 10; i < 0; i = i + 1) {
                s = s + a; s = s + b; s = s + c; s = s + d;
                a = s; b = s; c = s; d = s;
            }
            print(s); print(a + b + c + d);
        }
        """
        allocate(source, 3)

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_nested_loop_motion_correct(self, k):
        source = """
        void main() {
            int a; int b; int c; int d; int i; int j; int s;
            a = 1; b = 2; c = 3; d = 4; s = 0;
            for (i = 0; i < 5; i = i + 1) {
                for (j = 0; j < 5; j = j + 1) {
                    s = s + a + b + c + d;
                }
            }
            print(s); print(a + b + c + d);
        }
        """
        allocate(source, k)
