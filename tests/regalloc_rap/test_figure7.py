"""Reproduction of the paper's Figure 7: the effect of small regions on
spilling.

    S1: a = ...
    S2: ... = a        (own region R2 under pdgcc granularity)
    S3: ... = a        (own region R3)

If ``a`` is spilled while coloring the region with parent R1, RAP inserts
a load prior to the first use *in each subregion* containing a use — so
with one-statement regions there are two loads where merged regions would
need one.  §4 argues (a) larger regions reduce this overhead, and (b) when
R1 is a loop region, the motion phase recovers by hoisting to a single
load before the region.
"""

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.iloc import Op
from repro.pdg.nodes import Region
from repro.regalloc.rap.allocator import RAPContext
from repro.regalloc.rap.spill_insert import spill_register

SRC = """
void main() {
    int a;
    a = 70;
    print(a + 1);
    print(a + 2);
}
"""


def spill_a(granularity):
    prog = compile_source(SRC, granularity=granularity)
    module = prog.fresh_module()
    func = module.functions["main"]
    loadi = next(i for i in func.walk_instrs() if i.imm == 70)
    a = next(
        i for i in func.walk_instrs() if i.op is Op.I2I and i.srcs[0] == loadi.dst
    ).dst
    ctx = RAPContext(func, 3)
    spill_register(ctx, func.entry, a)
    # Behaviour must be preserved either way.
    reference = run_program(prog.reference_image())
    functions = {}
    from repro.pdg.linearize import linearize

    for name, f in module.functions.items():
        functions[name] = FunctionImage(
            name, list(linearize(f).instrs), param_slots(f)
        )
    stats = run_program(ProgramImage(list(module.globals.values()), functions))
    assert stats.output == reference.output
    spill_loads = [
        i
        for i in func.walk_instrs()
        if i.op is Op.LDM and ".%v" in i.addr.name
    ]
    return len(spill_loads)


class TestFigure7:
    def test_per_statement_regions_need_one_load_per_use_region(self):
        # S2 and S3 live in separate regions: two loads.
        assert spill_a("statement") == 2

    def test_merged_regions_reduce_spill_loads(self):
        # With the uses merged into the parent region's own code the paper
        # still inserts a load before *each use* in the parent region
        # (load/store architecture), so the comparison point here is that
        # merged granularity never needs MORE loads than per-statement.
        assert spill_a("merged") <= spill_a("statement")

    def test_loop_case_motion_recovers_single_preload(self):
        # "If R1 is the parent region node for a loop region, RAP may move
        # the spill code for a out of the region.  A single load for a may
        # be placed prior to the entrance of R1."
        source = """
        void main() {
            int a; int i; int s;
            int p; int q; int r; int t; int u;
            a = 7; p = 1; q = 2; r = 3; t = 4; u = 5;
            print(p + q + r + t + u);
            print(p - q); print(r + t - u);
            s = 0;
            for (i = 0; i < 10; i = i + 1) {
                s = s + a;
                s = s - a;
            }
            print(s); print(a);
        }
        """
        from repro.regalloc.rap import allocate_rap

        prog = compile_source(source)
        reference = run_program(prog.reference_image())
        module = prog.fresh_module()
        result = allocate_rap(module.functions["main"], 4)
        image = ProgramImage(
            list(module.globals.values()),
            {"main": FunctionImage("main", result.code, [])},
        )
        stats = run_program(image)
        assert stats.output == reference.output
        assert result.motion.hoisted_slots
        # The hoisted slot is loaded once before the loop, not once per
        # use per iteration: no load of it remains inside the loop span
        # (between the loop header label and the back-edge jump).
        hoisted = {slot for _, slot in result.motion.hoisted_slots}
        back_jump = next(
            pos
            for pos, instr in enumerate(result.code)
            if instr.op is Op.JMP
        )
        header = next(
            pos
            for pos, instr in enumerate(result.code)
            if instr.op is Op.LABEL
            and instr.label == result.code[back_jump].label
        )
        for instr in result.code[header:back_jump]:
            if instr.op is Op.LDM:
                assert instr.addr not in hoisted
