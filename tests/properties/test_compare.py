"""Tests for the NaN-tolerant output comparison helper."""

import math

from repro.testing import first_divergence, outputs_equal, values_equal

NAN = float("nan")
INF = float("inf")


class TestValuesEqual:
    def test_plain_numbers(self):
        assert values_equal(1, 1)
        assert not values_equal(1, 2)
        assert values_equal(1.5, 1.5)

    def test_nan_equals_nan(self):
        assert values_equal(NAN, NAN)

    def test_nan_not_equal_to_number(self):
        assert not values_equal(NAN, 1.0)
        assert not values_equal(1.0, NAN)

    def test_infinities(self):
        assert values_equal(INF, INF)
        assert not values_equal(INF, -INF)

    def test_int_float_type_mismatch(self):
        # The machine is deterministic: the same program prints the same
        # types; 1 (int) vs 1.0 (float) signals a real divergence.
        assert not values_equal(1, 1.0)


class TestOutputsEqual:
    def test_identical_streams(self):
        assert outputs_equal([1, 2.5, NAN, INF], [1, 2.5, NAN, INF])

    def test_length_mismatch(self):
        assert not outputs_equal([1, 2], [1])

    def test_element_mismatch(self):
        assert not outputs_equal([1, 2], [1, 3])

    def test_empty(self):
        assert outputs_equal([], [])


class TestFirstDivergence:
    def test_agreement(self):
        assert first_divergence([1, NAN], [1, NAN]) == -1

    def test_points_at_difference(self):
        assert first_divergence([1, 2, 3], [1, 9, 3]) == 1

    def test_length_difference(self):
        assert first_divergence([1, 2], [1, 2, 3]) == 2
