"""Property-based tests on the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_source
from repro.ir.iloc import vreg
from repro.pdg.linearize import linearize
from repro.pdg.liveness import FunctionAnalysis
from repro.regalloc.coloring import color_graph
from repro.regalloc.interference import InterferenceGraph
from repro.testing import random_source

# --------------------------------------------------------------------------
# Random interference graphs
# --------------------------------------------------------------------------

edges_strategy = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)),
    max_size=60,
)


def graph_from(edges):
    graph = InterferenceGraph()
    for a, b in edges:
        if a == b:
            graph.ensure(vreg(a))
        else:
            graph.add_edge(vreg(a), vreg(b))
    for node in graph.nodes:
        node.spill_cost = 1.0
    return graph


class TestColoringProperties:
    @settings(max_examples=120, deadline=None)
    @given(edges=edges_strategy, k=st.integers(2, 6))
    def test_coloring_is_proper(self, edges, k):
        graph = graph_from(edges)
        result = color_graph(graph, k)
        for node, color in result.colors.items():
            assert 0 <= color < k
            for neighbor in node.adj:
                if neighbor in result.colors:
                    assert result.colors[neighbor] != color

    @settings(max_examples=120, deadline=None)
    @given(edges=edges_strategy, k=st.integers(2, 6))
    def test_every_node_colored_or_spilled(self, edges, k):
        graph = graph_from(edges)
        result = color_graph(graph, k)
        assert len(result.colors) + len(result.spilled) == len(graph.nodes)

    @settings(max_examples=80, deadline=None)
    @given(edges=edges_strategy, k=st.integers(2, 6))
    def test_briggs_never_spills_more_than_chaitin(self, edges, k):
        optimistic = color_graph(graph_from(edges), k, optimistic=True)
        pessimistic = color_graph(graph_from(edges), k, optimistic=False)
        assert len(optimistic.spilled) <= len(pessimistic.spilled)

    @settings(max_examples=80, deadline=None)
    @given(edges=edges_strategy)
    def test_low_degree_graphs_always_color(self, edges):
        graph = graph_from(edges)
        k = max((node.degree for node in graph.nodes), default=0) + 1
        result = color_graph(graph, max(k, 2))
        assert result.succeeded

    @settings(max_examples=80, deadline=None)
    @given(edges=edges_strategy, k=st.integers(2, 6))
    def test_global_rule_gives_distinct_colors(self, edges, k):
        graph = graph_from(edges)
        global_nodes = set(graph.nodes[::2])
        result = color_graph(graph, k, global_nodes=global_nodes)
        seen = {}
        for node in global_nodes:
            if node in result.colors:
                color = result.colors[node]
                assert color not in seen, "two globals share a color"
                seen[color] = node


class TestGraphInvariants:
    @settings(max_examples=100, deadline=None)
    @given(edges=edges_strategy)
    def test_construction_invariants(self, edges):
        graph = graph_from(edges)
        graph.check_invariants()

    @settings(max_examples=100, deadline=None)
    @given(edges=edges_strategy, merges=st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=6
    ))
    def test_merge_preserves_invariants(self, edges, merges):
        graph = graph_from(edges)
        for a, b in merges:
            node_a, node_b = graph.node_of(vreg(a)), graph.node_of(vreg(b))
            if node_a is None or node_b is None or node_a is node_b:
                continue
            if node_b in node_a.adj:
                continue
            graph.merge_nodes(node_a, node_b)
        graph.check_invariants()


# --------------------------------------------------------------------------
# Liveness on random programs
# --------------------------------------------------------------------------


class TestLivenessProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_uses_live_before_every_instruction(self, seed):
        prog = compile_source(random_source(seed, "small"))
        for func in prog.module.functions.values():
            analysis = FunctionAnalysis(func)
            for instr in analysis.linear.instrs:
                live = analysis.live.live_before(instr)
                for reg in instr.uses:
                    assert reg in live

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_region_live_in_contains_used_live_registers(self, seed):
        prog = compile_source(random_source(seed, "small"))
        for func in prog.module.functions.values():
            analysis = FunctionAnalysis(func)
            for region in func.walk_regions():
                live_in = analysis.live_in(region)
                # Anything live into the region that the region reads
                # before writing is in live_in by definition of liveness;
                # sanity-check the containment direction we rely on.
                assert live_in <= set(
                    analysis.live.live_at[
                        analysis.linear.region_span[region][0]
                    ]
                )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_spans_partition_instructions(self, seed):
        prog = compile_source(random_source(seed, "small"))
        for func in prog.module.functions.values():
            linear = linearize(func)
            for region, (start, end) in linear.region_span.items():
                assert 0 <= start <= end <= len(linear.instrs)
                for sub in region.subregions():
                    sub_start, sub_end = linear.region_span[sub]
                    assert start <= sub_start and sub_end <= end
