"""Property-based differential testing of the whole pipeline.

For randomly generated (always-terminating, fault-free) Mini-C programs,
the observable output of allocated code — GRA or RAP, any register count,
any phase combination — must equal the infinite-register reference
execution.  This is the strongest single invariant in the repository: it
exercises the front end, lowering, linearization, liveness, both
allocators, spill insertion, motion, and the peephole in one property.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.validate import check_allocated, check_wellformed
from repro.pdg.validate import check_pdg
from repro.regalloc import allocate_gra, allocate_rap
from repro.regalloc.coalesce import coalesce_function
from repro.testing import outputs_equal, random_source

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def run_allocated(prog, allocator, k, coalesce=False, **kwargs):
    module = prog.fresh_module()
    functions = {}
    for name, func in module.functions.items():
        if coalesce:
            coalesce_function(func, k)
        result = allocator(func, k, **kwargs)
        check_wellformed(result.code)
        check_allocated(result.code, k)
        if allocator is allocate_rap:
            # RAP mutated the PDG in place; its tree must stay well formed
            # and fully rewritten to physical registers.
            check_pdg(func, expect_kind="p")
        functions[name] = FunctionImage(name, result.code, param_slots(func))
    image = ProgramImage(list(module.globals.values()), functions)
    return run_program(image, max_cycles=3_000_000)


def reference_of(seed, size="small"):
    source = random_source(seed, size)
    prog = compile_source(source)
    reference = run_program(prog.reference_image(), max_cycles=3_000_000)
    return source, prog, reference


class TestDifferential:
    @SETTINGS
    @given(seed=st.integers(0, 10**9), k=st.sampled_from([3, 4, 5, 8]))
    def test_gra_matches_reference(self, seed, k):
        source, prog, reference = reference_of(seed)
        stats = run_allocated(prog, allocate_gra, k)
        assert outputs_equal(stats.output, reference.output), source

    @SETTINGS
    @given(seed=st.integers(0, 10**9), k=st.sampled_from([3, 4, 5, 8]))
    def test_rap_matches_reference(self, seed, k):
        source, prog, reference = reference_of(seed)
        stats = run_allocated(prog, allocate_rap, k)
        assert outputs_equal(stats.output, reference.output), source

    @SETTINGS
    @given(seed=st.integers(0, 10**9))
    def test_rap_phases_independent(self, seed):
        source, prog, reference = reference_of(seed)
        for kwargs in (
            {"enable_motion": False},
            {"enable_peephole": False},
            {"enable_motion": False, "enable_peephole": False},
            {"optimistic": False},
            {"remat": True},
            {"global_peephole": True},
            {"remat": True, "global_peephole": True},
        ):
            stats = run_allocated(prog, allocate_rap, 3, **kwargs)
            assert outputs_equal(stats.output, reference.output), (source, kwargs)

    @SETTINGS
    @given(seed=st.integers(0, 10**9), k=st.sampled_from([3, 6]))
    def test_coalescing_preserves_behaviour(self, seed, k):
        source, prog, reference = reference_of(seed)
        for allocator in (allocate_gra, allocate_rap):
            stats = run_allocated(prog, allocator, k, coalesce=True)
            assert outputs_equal(stats.output, reference.output), source

    @SETTINGS
    @given(seed=st.integers(0, 10**9))
    def test_merged_granularity_same_behaviour(self, seed):
        source = random_source(seed, "small")
        prog_stmt = compile_source(source, granularity="statement")
        prog_merged = compile_source(source, granularity="merged")
        ref = run_program(prog_stmt.reference_image(), max_cycles=3_000_000)
        merged_ref = run_program(
            prog_merged.reference_image(), max_cycles=3_000_000
        )
        assert outputs_equal(ref.output, merged_ref.output)
        stats = run_allocated(prog_merged, allocate_rap, 4)
        assert outputs_equal(stats.output, ref.output), source


class TestGeneratorQuality:
    def test_generator_is_deterministic(self):
        assert random_source(1234) == random_source(1234)

    def test_different_seeds_differ(self):
        assert random_source(1) != random_source(2)

    @pytest.mark.parametrize("size", ["small", "medium", "large"])
    def test_all_profiles_compile_and_run(self, size):
        for seed in range(5):
            source = random_source(seed, size)
            prog = compile_source(source)
            stats = run_program(prog.reference_image(), max_cycles=3_000_000)
            assert stats.total.cycles > 0
