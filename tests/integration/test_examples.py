"""The examples must stay runnable — they are documentation."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    ("quickstart.py", ["reference output", "allocated sum_squares"]),
    ("figure1_pdg.py", ["Region hierarchy", "digraph"]),
    ("compare_allocators.py", ["RAP vs GRA", "coalescing extension"]),
    ("local_spilling.py", ["GRA (k=4)", "RAP (k=4)"]),
    ("scheduling_tension.py", ["unscheduled", "scheduled"]),
    ("figure3_conflicts.py", ["combined graph of R3", "{a,e}"]),
]


@pytest.mark.parametrize("script,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    for fragment in expected:
        assert fragment in result.stdout, (script, fragment, result.stdout[:500])
