"""The reference-image cache must be keyed on the schedule flag.

Regression test for a cache-aliasing bug: ``reference_image()`` used a
single cached slot, so a ``schedule=True`` request after a plain one
(or vice versa) would be handed the wrong instruction order — and,
because the pre-decoded fast-path form hangs off the FunctionImage, the
wrong *decode cache* as well.  The cache is now keyed per variant; this
pins cached-vs-fresh byte equality for both settings.
"""

from repro.bench.suite import program
from repro.compiler import compile_source
from repro.interp.machine import run_program
from repro.ir.printer import format_code

#: Independent multiplies inside one block give the list scheduler
#: something to actually reorder under the non-unit latency model.
SOURCE = """
void main() {
    int a; int b; int c; int d;
    a = 3 * 5; b = 7 * 11; c = a * b; d = b * a;
    print(a + b); print(c - d);
}
"""


def _listings(image):
    return {name: format_code(fi.code) for name, fi in image.functions.items()}


class TestScheduleKeyedCache:
    def test_cached_matches_fresh_for_both_variants(self):
        shared = compile_source(SOURCE)
        # Warm both variants on one CompiledProgram, in both orders.
        plain_cached = _listings(shared.reference_image(schedule=False))
        sched_cached = _listings(shared.reference_image(schedule=True))
        plain_again = _listings(shared.reference_image(schedule=False))

        plain_fresh = _listings(
            compile_source(SOURCE).reference_image(schedule=False)
        )
        sched_fresh = _listings(
            compile_source(SOURCE).reference_image(schedule=True)
        )

        assert plain_cached == plain_fresh
        assert sched_cached == sched_fresh
        assert plain_again == plain_fresh

    def test_variants_are_distinct_images_with_distinct_decode(self):
        prog = compile_source(SOURCE)
        plain = prog.reference_image(schedule=False)
        sched = prog.reference_image(schedule=True)
        assert plain is not sched
        # Decode caches live on the per-variant FunctionImages, so
        # decoding one variant must not populate (or poison) the other.
        run_program(plain)
        assert plain.functions["main"]._decoded
        assert sched.functions["main"]._decoded is None

    def test_schedule_actually_reorders_but_preserves_behaviour(self):
        prog = compile_source(SOURCE)
        plain = prog.reference_image(schedule=False)
        sched = prog.reference_image(schedule=True)
        assert _listings(plain) != _listings(sched), (
            "scheduler moved nothing; pick a source with instruction-level"
            " parallelism"
        )
        a, b = run_program(plain), run_program(sched)
        assert a.output == b.output
        assert a.total.cycles == b.total.cycles  # permutation, 1 cycle each

    def test_suite_program_cache_identity_per_variant(self):
        prog = compile_source(program("sieve").source())
        assert prog.reference_image() is prog.reference_image()
        assert prog.reference_image(schedule=True) is prog.reference_image(
            schedule=True
        )
        assert prog.reference_image() is not prog.reference_image(
            schedule=True
        )
