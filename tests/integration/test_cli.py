"""Tests for the command-line driver."""

import pytest

from repro.cli import main

DEMO = """
int f(int n) {
    int i; int s;
    s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
void main() { print(f(10)); }
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.mc"
    path.write_text(DEMO)
    return str(path)


class TestRun:
    def test_reference_run(self, demo_file, capsys):
        assert main(["run", demo_file]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "45"
        assert "reference:" in out

    def test_allocated_run(self, demo_file, capsys):
        assert main(["run", demo_file, "--allocator", "rap", "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "45"
        assert "rap k=4" in out

    def test_gra_run_quiet(self, demo_file, capsys):
        assert main(
            ["run", demo_file, "--allocator", "gra", "-k", "3", "--quiet"]
        ) == 0
        assert capsys.readouterr().out.strip() == "45"

    def test_coalesce_flag(self, demo_file, capsys):
        assert main(
            ["run", demo_file, "--allocator", "gra", "-k", "5", "--coalesce"]
        ) == 0
        assert capsys.readouterr().out.splitlines()[0] == "45"

    def test_merged_granularity(self, demo_file, capsys):
        assert main(
            ["run", demo_file, "--allocator", "rap", "-k", "4",
             "--granularity", "merged"]
        ) == 0
        assert capsys.readouterr().out.splitlines()[0] == "45"


class TestCompare:
    def test_compare_sweep(self, demo_file, capsys):
        assert main(["compare", demo_file, "-k", "3", "5"]) == 0
        out = capsys.readouterr().out
        assert "RAP vs GRA" in out
        assert out.count("%") >= 2


class TestEmit:
    def test_emit_iloc(self, demo_file, capsys):
        assert main(["emit", demo_file, "--what", "iloc"]) == 0
        out = capsys.readouterr().out
        assert "; function f" in out and "loadI" in out

    def test_emit_pdg(self, demo_file, capsys):
        assert main(["emit", demo_file, "--what", "pdg"]) == 0
        out = capsys.readouterr().out
        assert "[entry]" in out and "(loop)" in out

    def test_emit_dot_single_function(self, demo_file, capsys):
        assert main(
            ["emit", demo_file, "--what", "dot", "--function", "f"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "f"')
        assert 'digraph "main"' not in out

    def test_emit_allocated(self, demo_file, capsys):
        assert main(
            ["emit", demo_file, "--what", "alloc", "--allocator", "gra", "-k", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "(gra, k=3)" in out
        # Only physical registers remain as operands (spill-slot *names*
        # legitimately embed the original virtual register, e.g. [f.%v0]).
        assert "=> %v" not in out
        assert ", %v" not in out


class TestTable1Subcommand:
    def test_restricted_table(self, capsys):
        assert main(["table1", "--k", "3", "--programs", "hanoi"]) == 0
        out = capsys.readouterr().out
        assert "hanoi" in out and "Average" in out
