"""Tests for the command-line driver."""

import pytest

from repro.cli import main

DEMO = """
int f(int n) {
    int i; int s;
    s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
void main() { print(f(10)); }
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.mc"
    path.write_text(DEMO)
    return str(path)


class TestRun:
    def test_reference_run(self, demo_file, capsys):
        assert main(["run", demo_file]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "45"
        assert "reference:" in out

    def test_allocated_run(self, demo_file, capsys):
        assert main(["run", demo_file, "--allocator", "rap", "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "45"
        assert "rap k=4" in out

    def test_gra_run_quiet(self, demo_file, capsys):
        assert main(
            ["run", demo_file, "--allocator", "gra", "-k", "3", "--quiet"]
        ) == 0
        assert capsys.readouterr().out.strip() == "45"

    def test_coalesce_flag(self, demo_file, capsys):
        assert main(
            ["run", demo_file, "--allocator", "gra", "-k", "5", "--coalesce"]
        ) == 0
        assert capsys.readouterr().out.splitlines()[0] == "45"

    def test_merged_granularity(self, demo_file, capsys):
        assert main(
            ["run", demo_file, "--allocator", "rap", "-k", "4",
             "--granularity", "merged"]
        ) == 0
        assert capsys.readouterr().out.splitlines()[0] == "45"

    def test_profile_prints_stage_table(self, demo_file, capsys):
        assert main(
            ["run", demo_file, "--allocator", "rap", "-k", "4", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "45"
        assert "Per-stage telemetry" in out
        for stage in ("parse", "allocate", "validate", "execute"):
            assert stage in out
        for column in ("rounds", "spills", "peephole"):
            assert column in out

    def test_profile_reference_run(self, demo_file, capsys):
        assert main(["run", demo_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "execute" in out and "allocate" not in out


class TestCompare:
    def test_compare_sweep(self, demo_file, capsys):
        assert main(["compare", demo_file, "-k", "3", "5"]) == 0
        out = capsys.readouterr().out
        assert "RAP vs GRA" in out
        assert out.count("%") >= 2


class TestEmit:
    def test_emit_iloc(self, demo_file, capsys):
        assert main(["emit", demo_file, "--what", "iloc"]) == 0
        out = capsys.readouterr().out
        assert "; function f" in out and "loadI" in out

    def test_emit_pdg(self, demo_file, capsys):
        assert main(["emit", demo_file, "--what", "pdg"]) == 0
        out = capsys.readouterr().out
        assert "[entry]" in out and "(loop)" in out

    def test_emit_dot_single_function(self, demo_file, capsys):
        assert main(
            ["emit", demo_file, "--what", "dot", "--function", "f"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "f"')
        assert 'digraph "main"' not in out

    def test_emit_allocated(self, demo_file, capsys):
        assert main(
            ["emit", demo_file, "--what", "alloc", "--allocator", "gra", "-k", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "(gra, k=3)" in out
        # Only physical registers remain as operands (spill-slot *names*
        # legitimately embed the original virtual register, e.g. [f.%v0]).
        assert "=> %v" not in out
        assert ", %v" not in out


class TestTable1Subcommand:
    def test_restricted_table(self, capsys):
        assert main(["table1", "--k", "3", "--programs", "hanoi"]) == 0
        out = capsys.readouterr().out
        assert "hanoi" in out and "Average" in out

    def test_parallel_profile_and_metrics_out(self, capsys, tmp_path):
        import json

        metrics_file = tmp_path / "metrics.json"
        assert main(
            ["table1", "--k", "3", "--programs", "hanoi", "--jobs", "2",
             "--profile", "--metrics-out", str(metrics_file)]
        ) == 0
        captured = capsys.readouterr()
        assert "hanoi" in captured.out
        assert "Per-stage telemetry" in captured.out
        # wall-time footer goes to stderr so stdout stays byte-stable
        assert "[wall]" in captured.err and "jobs=2" in captured.err
        payload = json.loads(metrics_file.read_text())
        assert payload["jobs"] == 2
        assert payload["stages"]["allocate"]["calls"] >= 1
        cells = {(c["program"], c["allocator"], c["k"]) for c in payload["cells"]}
        assert cells == {
            ("hanoi", "gra", 3),
            ("hanoi", "rap", 3),
            ("hanoi", "ssaspill", 3),
        }


class TestResilienceCommands:
    def test_run_spillall(self, demo_file, capsys):
        assert main(["run", demo_file, "--allocator", "spillall", "-k", "3"]) == 0
        assert capsys.readouterr().out.splitlines()[0] == "45"

    def test_faults_listing(self, capsys):
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "gra.interference.drop-edge" in out
        assert "rap.region.raise" in out

    def test_inject_surfaces_structured_error(self, demo_file, capsys):
        code = main(
            ["run", demo_file, "--allocator", "gra", "-k", "3",
             "--inject", "gra.spill.corrupt-slot"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "stage=validate" in err
        assert "allocator=gra" in err

    def test_frontend_error_rendered(self, tmp_path, capsys):
        bad = tmp_path / "bad.mc"
        bad.write_text("void main() { int ; }")
        assert main(["run", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_fuzz_and_replay_roundtrip(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        # A healthy compiler fuzzes clean.
        assert main(["fuzz", "--seeds", "2", "--k", "3",
                     "--allocators", "gra", "--out", out_dir]) == 0
        assert "ok" in capsys.readouterr().out

    def test_replay_bundle_via_cli(self, tmp_path, capsys):
        from repro.resilience.faults import FaultSpec
        from repro.resilience.pipeline import PipelineConfig
        from repro.resilience.triage import (
            make_bundle, probe_failure, write_bundle,
        )

        source = (
            "int f(int a, int b, int c, int d) {\n"
            "    int e; int g; int h;\n"
            "    e = a * b; g = c * d; h = a * d;\n"
            "    return e + g + h + a + b + c + d;\n"
            "}\n"
            "void main() { print(f(2, 3, 5, 7)); }\n"
        )
        cfg = PipelineConfig(verify_spill_discipline=False)
        spec = FaultSpec("gra.spill.corrupt-slot", times=None)
        failure = probe_failure(source, "gra", 3, config=cfg, inject=[spec])
        assert failure is not None
        bundle = make_bundle(
            source, failure, "gra", 3, config=cfg, inject=[spec],
            minimize=False,
        )
        path = write_bundle(bundle, str(tmp_path))
        assert main(["replay", path]) == 0
        assert "reproduces" in capsys.readouterr().out
