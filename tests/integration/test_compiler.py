"""Tests for the one-call compilation pipeline (repro.compiler)."""

from repro.compiler import (
    CompiledProgram,
    compile_source,
    param_slots,
    strip_self_copies,
)
from repro.interp.machine import run_program
from repro.ir import iloc
from repro.ir.iloc import Op, preg, vreg

SOURCE = """
int g = 2;
int f(int a) { return a * g; }
void main() { print(f(21)); }
"""


class TestCompiledProgram:
    def test_reference_image_runs(self):
        prog = compile_source(SOURCE)
        stats = run_program(prog.reference_image())
        assert stats.output == [42]

    def test_reference_image_clones_instructions(self):
        # Mutating the image's code must not corrupt the module's PDG.
        prog = compile_source(SOURCE)
        image = prog.reference_image()
        pdg_ids = {
            id(i)
            for func in prog.module.functions.values()
            for i in func.walk_instrs()
        }
        for func_image in image.functions.values():
            for instr in func_image.code:
                assert id(instr) not in pdg_ids

    def test_fresh_module_is_independent(self):
        prog = compile_source(SOURCE)
        first = prog.fresh_module()
        second = prog.fresh_module()
        instr = next(first.functions["f"].walk_instrs())
        instr.rewrite_regs({reg: preg(0) for reg in instr.regs()})
        # The second copy and the original are untouched.
        for module in (second, prog.module):
            other = next(module.functions["f"].walk_instrs())
            assert all(reg.is_virtual for reg in other.regs())

    def test_param_slots_order(self):
        prog = compile_source("void f(int a, float b, int c) { }")
        assert param_slots(prog.module.functions["f"]) == [
            "f.arg0",
            "f.arg1",
            "f.arg2",
        ]

    def test_globals_carried_into_image(self):
        prog = compile_source(SOURCE)
        image = prog.reference_image()
        names = {var.name for var in image.globals}
        assert "g" in names


class TestStripSelfCopies:
    def test_self_copy_removed(self):
        code = [iloc.copy(preg(1), preg(1)), iloc.copy(preg(1), preg(2))]
        out = strip_self_copies(code)
        assert len(out) == 1 and out[0].dst == preg(2)

    def test_virtual_self_copy_also_removed(self):
        code = [iloc.copy(vreg(3), vreg(3))]
        assert strip_self_copies(code) == []

    def test_non_copies_untouched(self):
        code = [iloc.loadi(1, preg(0))]
        assert strip_self_copies(code) == code
