"""Integration: every benchmark program behaves identically under the
reference execution, GRA, and RAP, at small and moderate register counts.

This is the correctness backbone of the Table-1 reproduction: the harness
itself asserts the same property on every measurement, and these tests pin
it independently (with the cheapest k values to keep the suite fast).
"""

import pytest

from repro.bench.harness import Harness
from repro.bench.suite import PROGRAMS, program

FAST_PROGRAMS = ["hanoi", "perm", "queens", "intmm", "hsort"]


@pytest.fixture(scope="module")
def harness():
    return Harness()


class TestSuiteDifferential:
    @pytest.mark.parametrize("name", FAST_PROGRAMS)
    @pytest.mark.parametrize("allocator", ["gra", "rap"])
    def test_small_k(self, harness, name, allocator):
        harness.run(program(name), allocator, 3)

    @pytest.mark.parametrize("name", FAST_PROGRAMS)
    @pytest.mark.parametrize("allocator", ["gra", "rap"])
    def test_moderate_k(self, harness, name, allocator):
        harness.run(program(name), allocator, 7)

    @pytest.mark.parametrize("name", ["sieve", "nsieve", "linpack", "puzzle"])
    def test_heavier_programs_at_k5(self, harness, name):
        harness.run(program(name), "gra", 5)
        harness.run(program(name), "rap", 5)

    def test_livermore_at_k5(self, harness):
        harness.run(program("livermore"), "gra", 5)
        harness.run(program("livermore"), "rap", 5)

    @pytest.mark.parametrize("name", ["hanoi", "perm"])
    def test_with_coalescing(self, harness, name):
        harness.run(program(name), "gra", 4, pre_coalesce=True)
        harness.run(program(name), "rap", 4, pre_coalesce=True)


class TestRoutineAttribution:
    def test_rows_have_nonzero_cycles(self, harness):
        bench = program("queens")
        run = harness.run(bench, "rap", 5)
        for routine in bench.routines:
            assert run.routine(bench, routine).counters.cycles > 0

    def test_rollup_combines_functions(self, harness):
        bench = program("hsort")
        run = harness.run(bench, "gra", 5)
        combined = run.routine(bench, "hsort").counters.cycles
        parts = (
            run.stats.per_function["hsort"].cycles
            + run.stats.per_function["sift"].cycles
        )
        assert combined == parts
