"""Tests for per-region liveness queries (FunctionAnalysis)."""

from repro.compiler import compile_source
from repro.ir.iloc import Op
from repro.pdg.liveness import FunctionAnalysis
from repro.pdg.nodes import Region


def analysis_of(source, name="f"):
    func = compile_source(source).module.functions[name]
    return func, FunctionAnalysis(func)


def home_reg(func, analysis, marker_value):
    """The register copied into by the assignment whose RHS is the literal
    ``marker_value`` (a test trick to find a variable's home register)."""
    for instr in func.walk_instrs():
        if instr.op is Op.LOADI and instr.imm == marker_value:
            loadi = instr
            break
    else:
        raise AssertionError("marker not found")
    for instr in func.walk_instrs():
        if instr.op is Op.I2I and instr.srcs[0] == loadi.dst:
            return instr.dst
    raise AssertionError("copy for marker not found")


def stmt_regions(func):
    return [i for i in func.entry.items if isinstance(i, Region)]


class TestRegionLiveness:
    def test_variable_live_between_def_and_use(self):
        func, analysis = analysis_of(
            "void f() { int x; int y; x = 77; y = 0; print(x); }"
        )
        x = home_reg(func, analysis, 77)
        regions = stmt_regions(func)
        # x is live into the region of `y = 0` (defined before, used after).
        assert x in analysis.live_in(regions[1])
        assert x in analysis.live_out(regions[1])

    def test_dead_after_last_use(self):
        func, analysis = analysis_of(
            "void f() { int x; x = 77; print(x); print(0); }"
        )
        x = home_reg(func, analysis, 77)
        regions = stmt_regions(func)
        assert x not in analysis.live_out(regions[1])

    def test_loop_carried_value_live_into_loop(self):
        func, analysis = analysis_of(
            """
            void f() {
                int i; int s;
                s = 77; i = 0;
                while (i < 3) { s = s + i; i = i + 1; }
                print(s);
            }
            """
        )
        s = home_reg(func, analysis, 77)
        loop = next(r for r in func.entry.items if isinstance(r, Region) and r.is_loop)
        assert s in analysis.live_in(loop)
        assert s in analysis.live_out(loop)

    def test_value_defined_and_dead_inside_loop_not_live_out(self):
        func, analysis = analysis_of(
            """
            void f() {
                int i; int t;
                i = 0;
                while (i < 3) { t = 77; print(t); i = i + 1; }
            }
            """
        )
        t = home_reg(func, analysis, 77)
        loop = next(r for r in func.entry.items if isinstance(r, Region) and r.is_loop)
        assert t not in analysis.live_out(loop)
        assert t not in analysis.live_in(loop)

    def test_branch_value_live_into_if_region(self):
        func, analysis = analysis_of(
            """
            void f() {
                int x; int y;
                x = 77;
                if (x > 0) { y = x; } else { y = 0; }
                print(y);
            }
            """
        )
        x = home_reg(func, analysis, 77)
        if_region = stmt_regions(func)[1]
        assert x in analysis.live_in(if_region)


class TestLocality:
    def test_local_to_statement_region(self):
        func, analysis = analysis_of("void f() { int x; x = 1 + 2; print(0); }")
        region = stmt_regions(func)[0]
        add = next(i for i in region.walk_instrs() if i.op is Op.ADD)
        temp = add.dst
        assert analysis.is_local_to(temp, region)
        assert not analysis.is_global_to(temp, region)

    def test_variable_used_across_regions_is_global(self):
        func, analysis = analysis_of("void f() { int x; x = 77; print(x); }")
        x = home_reg(func, analysis, 77)
        region = stmt_regions(func)[0]
        assert analysis.is_global_to(x, region)

    def test_everything_local_to_entry(self):
        func, analysis = analysis_of("void f() { int x; x = 77; print(x); }")
        for reg in func.referenced_regs():
            assert analysis.is_local_to(reg, func.entry)

    def test_param_home_is_global_to_subregions(self):
        func, analysis = analysis_of("void f(int a) { print(a); }")
        region = stmt_regions(func)[0]
        assert analysis.is_global_to(func.params[0].reg, region)


class TestInstrLevel:
    def test_live_before_and_after(self):
        func, analysis = analysis_of("void f() { int x; x = 1 + 2; print(x); }")
        add = next(i for i in func.walk_instrs() if i.op is Op.ADD)
        # Operands live before the add; result live after.
        for src in add.srcs:
            assert src in analysis.live_before(add)
        assert add.dst in analysis.live_after(add)

    def test_branch_live_after_unions_successors(self):
        func, analysis = analysis_of(
            """
            void f() {
                int x; int y; int z;
                x = 77; y = 2; z = 3;
                if (x > 0) { print(y); } else { print(z); }
            }
            """
        )
        cbr = next(i for i in func.walk_instrs() if i.op is Op.CBR)
        live = analysis.live_after(cbr)
        y = home_reg(func, analysis, 2)
        z = home_reg(func, analysis, 3)
        assert y in live and z in live
