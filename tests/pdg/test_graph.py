"""Tests for the PDG containers (Module, PDGFunction, GlobalVar)."""

import pytest

from repro.compiler import compile_source
from repro.ir import iloc
from repro.ir.iloc import Op, vreg
from repro.pdg.graph import GlobalVar, Module, ParamInfo, PDGFunction
from repro.pdg.nodes import Predicate, Region


SOURCE = """
int g = 3;
float arr[8];
int f(int a, int b) {
    int x;
    x = a + b;
    if (x > 0) { x = x - 1; }
    while (x > 0) { x = x / 2; }
    return x;
}
void main() { print(f(4, 5)); }
"""


@pytest.fixture()
def module():
    return compile_source(SOURCE).fresh_module()


class TestGlobalVar:
    def test_scalar_size(self):
        assert GlobalVar("n", "int").size == 1
        assert not GlobalVar("n", "int").is_array

    def test_array_sizes(self):
        assert GlobalVar("a", "int", [10]).size == 10
        assert GlobalVar("m", "float", [3, 4]).size == 12


class TestModule:
    def test_lookup(self, module):
        assert module.function("f").name == "f"
        assert module.globals["g"].init == 3
        assert module.globals["arr"].dims == [8]

    def test_unknown_function_raises(self, module):
        with pytest.raises(KeyError):
            module.function("nope")


class TestPDGFunction:
    def test_new_vregs_are_fresh(self, module):
        func = module.function("f")
        before = func.referenced_regs()
        fresh = func.new_vreg()
        assert fresh not in before
        assert func.new_vreg() != fresh

    def test_reserve_vregs(self):
        func = PDGFunction("t", "void", [])
        func.reserve_vregs(5)
        assert func.new_vreg().index == 5

    def test_parent_map_covers_all_but_entry(self, module):
        func = module.function("f")
        parents = func.parent_map()
        regions = list(func.walk_regions())
        assert func.entry not in parents
        for region in regions:
            if region is not func.entry:
                assert region in parents
                parent, index = parents[region]
                assert 0 <= index < len(parent.items)

    def test_parent_map_predicate_children_share_index(self, module):
        func = module.function("f")
        parents = func.parent_map()
        for region in func.walk_regions():
            for index, item in enumerate(region.items):
                if isinstance(item, Predicate):
                    for sub in item.regions():
                        assert parents[sub] == (region, index)

    def test_instr_locations_complete(self, module):
        func = module.function("f")
        locations = func.instr_locations()
        for instr in func.walk_instrs():
            assert id(instr) in locations
            region, index = locations[id(instr)]
            item = region.items[index]
            assert item is instr or (
                isinstance(item, Predicate) and item.branch is instr
            )

    def test_reference_counts_sum(self, module):
        func = module.function("f")
        counts = func.reference_counts()
        total = sum(counts.values())
        expected = sum(len(i.regs()) for i in func.walk_instrs())
        assert total == expected

    def test_param_info(self, module):
        func = module.function("f")
        assert [p.name for p in func.params] == ["a", "b"]
        assert all(isinstance(p, ParamInfo) for p in func.params)
