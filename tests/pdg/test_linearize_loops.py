"""Linearizer edge cases around loop regions (shapes RAP's spill insertion
can create)."""

import pytest

from repro.interp.machine import FunctionImage, Machine, ProgramImage
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, Symbol, vreg
from repro.pdg.graph import PDGFunction
from repro.pdg.linearize import linearize
from repro.pdg.nodes import Predicate, Region


def count_up_to(limit):
    """Manually build: i = 0; while (i < limit) { i = i + 1 }; print i."""
    func = PDGFunction("f", "void", [])
    func.reserve_vregs(10)
    i, lim, cond, one, tmp = (vreg(n) for n in range(5))

    body = Region(kind="body")
    body.items.append(iloc.loadi(1, one))
    body.items.append(iloc.binary(Op.ADD, i, one, tmp))
    body.items.append(iloc.copy(tmp, i))

    loop = Region(kind="loop", is_loop=True)
    loop.items.append(iloc.loadi(limit, lim))
    loop.items.append(iloc.binary(Op.CMP_LT, i, lim, cond))
    loop.items.append(Predicate(cond, body, None))

    func.entry.items.append(iloc.loadi(0, i))
    func.entry.items.append(loop)
    func.entry.items.append(Instr(Op.PRINT, srcs=[i]))
    return func, loop, body, i


def run(func):
    code = list(linearize(func).instrs)
    image = ProgramImage([], {"f": FunctionImage("f", code, [])})
    machine = Machine(image)
    machine.run("f")
    return machine.stats


class TestLoopLayout:
    def test_basic_loop_counts(self):
        func, *_ = count_up_to(5)
        assert run(func).output == [5]

    def test_zero_trip_loop(self):
        func, *_ = count_up_to(0)
        assert run(func).output == [0]

    def test_items_after_guard_execute_per_iteration(self):
        # RAP's spill insertion can leave instructions after the guard
        # predicate (e.g. a store anchored behind it); they belong to the
        # body path and run once per iteration.
        func, loop, body, i = count_up_to(3)
        slot = Symbol("f.x")
        loop.items.append(iloc.stm(slot, i))
        stats = run(func)
        assert stats.output == [3]
        assert stats.total.stores == 3  # once per iteration, not per exit

    def test_loop_without_guard_rejected(self):
        func = PDGFunction("g", "void", [])
        broken = Region(kind="loop", is_loop=True)
        broken.items.append(iloc.loadi(1, vreg(0)))
        func.entry.items.append(broken)
        with pytest.raises(ValueError):
            linearize(func)

    def test_spill_regions_around_loop(self):
        # Motion wraps loops with spill regions; they linearize in order.
        func, loop, body, i = count_up_to(4)
        slot = Symbol("f.a")
        pre = Region(kind="spill")
        pre.items.append(iloc.stm(slot, i))
        post = Region(kind="spill")
        post.items.append(iloc.ldm(slot, vreg(7)))
        index = func.entry.index_of(loop)
        func.entry.items.insert(index + 1, post)
        func.entry.items.insert(index, pre)
        stats = run(func)
        assert stats.output == [4]
        assert stats.total.stores == 1 and stats.total.loads == 1

    def test_nested_loop_spans_nest(self):
        func, loop, body, i = count_up_to(2)
        # Nest another loop inside the body.
        j, jl, jc = vreg(7), vreg(8), vreg(9)
        inner_body = Region(kind="body")
        inner_body.items.append(iloc.loadi(1, jl))
        inner_body.items.append(iloc.binary(Op.ADD, j, jl, j))
        inner = Region(kind="loop", is_loop=True)
        inner.items.append(iloc.loadi(2, jl))
        inner.items.append(iloc.binary(Op.CMP_LT, j, jl, jc))
        inner.items.append(Predicate(jc, inner_body, None))
        body.items.insert(0, iloc.loadi(0, j))
        body.items.insert(1, inner)
        linear = linearize(func)
        outer_span = linear.region_span[loop]
        inner_span = linear.region_span[inner]
        assert outer_span[0] <= inner_span[0] <= inner_span[1] <= outer_span[1]
        assert run(func).output == [2]
