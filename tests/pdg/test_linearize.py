"""Tests for PDG linearization."""

from repro.compiler import compile_source
from repro.ir.iloc import Op
from repro.pdg.linearize import linearize
from repro.pdg.nodes import Region


def func_of(source, name="f"):
    return compile_source(source).module.functions[name]


class TestStructure:
    def test_ends_with_ret(self):
        linear = linearize(func_of("void f() { int x; x = 1; }"))
        assert linear.instrs[-1].op is Op.RET

    def test_explicit_ret_not_duplicated(self):
        linear = linearize(func_of("int f() { return 1; }"))
        rets = [i for i in linear.instrs if i.op is Op.RET]
        assert len(rets) == 1

    def test_instruction_objects_shared_with_pdg(self):
        func = func_of("void f() { int x; x = 1 + 2; }")
        linear = linearize(func)
        pdg_ids = {id(i) for i in func.walk_instrs()}
        emitted = [i for i in linear.instrs if i.op not in (Op.LABEL, Op.JMP, Op.RET)]
        assert all(id(i) in pdg_ids for i in emitted)

    def test_if_emits_branch_then_both_arms(self):
        linear = linearize(
            func_of("void f() { int x; if (1) { x = 1; } else { x = 2; } }")
        )
        ops = [i.op for i in linear.instrs]
        assert Op.CBR in ops and Op.JMP in ops

    def test_branch_labels_resolve(self):
        linear = linearize(
            func_of("void f() { int x; if (1) { x = 1; } else { x = 2; } }")
        )
        labels = {i.label for i in linear.instrs if i.op is Op.LABEL}
        for instr in linear.instrs:
            if instr.op is Op.CBR:
                assert instr.label in labels and instr.label_false in labels
            if instr.op is Op.JMP:
                assert instr.label in labels

    def test_loop_has_back_edge_jump(self):
        linear = linearize(
            func_of("void f() { int i; i = 0; while (i < 3) { i = i + 1; } }")
        )
        label_pos = {
            i.label: pos
            for pos, i in enumerate(linear.instrs)
            if i.op is Op.LABEL
        }
        jumps = [(pos, i) for pos, i in enumerate(linear.instrs) if i.op is Op.JMP]
        assert any(label_pos[i.label] < pos for pos, i in jumps)

    def test_if_without_else_falls_through(self):
        linear = linearize(func_of("void f() { if (1) { print(1); } }"))
        cbr = next(i for i in linear.instrs if i.op is Op.CBR)
        # With no else, the false edge goes straight to the join label.
        assert cbr.label_false.startswith("f_endif") or "endif" in cbr.label_false


class TestSpans:
    def test_spans_are_contiguous_and_nested(self):
        func = func_of(
            """
            void f() {
                int i; int s;
                s = 0;
                for (i = 0; i < 4; i = i + 1) {
                    if (i > 1) { s = s + i; } else { s = s - 1; }
                }
                print(s);
            }
            """
        )
        linear = linearize(func)
        spans = linear.region_span
        for region, (start, end) in spans.items():
            assert 0 <= start <= end <= len(linear.instrs)
        # Child spans nest within their parent's span.
        for region, (start, end) in spans.items():
            for sub in region.subregions():
                sub_start, sub_end = spans[sub]
                assert start <= sub_start <= sub_end <= end

    def test_every_region_has_a_span(self):
        func = func_of("void f() { int x; if (1) { x = 1; } while (x) { x = 0; } }")
        linear = linearize(func)
        for region in func.walk_regions():
            assert region in linear.region_span

    def test_index_of_matches_positions(self):
        func = func_of("void f() { int x; x = 1; x = 2; }")
        linear = linearize(func)
        for pos, instr in enumerate(linear.instrs):
            if instr.op not in (Op.LABEL,):
                assert linear.index_of(instr) == pos

    def test_relinearization_is_deterministic(self):
        func = func_of("void f() { int x; if (1) { x = 1; } else { x = 2; } }")
        first = [str(i) for i in linearize(func).instrs]
        second = [str(i) for i in linearize(func).instrs]
        assert first == second

    def test_str_listing(self):
        func = func_of("void f() { int x; x = 1; }")
        text = str(linearize(func))
        assert "loadI" in text and "i2i" in text
