"""Tests for data-dependence extraction."""

from repro.compiler import compile_source
from repro.ir.iloc import Op
from repro.pdg.datadeps import (
    all_dependences,
    flow_dependences,
    region_level_dependences,
)
from repro.pdg.liveness import FunctionAnalysis


def setup(source, name="f"):
    func = compile_source(source).module.functions[name]
    return func, FunctionAnalysis(func)


class TestFlow:
    def test_straightline_def_use(self):
        func, analysis = setup("void f() { int x; x = 1; print(x); }")
        deps = flow_dependences(analysis)
        # The loadI feeds the copy; the copy feeds the print.
        kinds = {(d.source.op, d.sink.op) for d in deps}
        assert (Op.LOADI, Op.I2I) in kinds
        assert (Op.I2I, Op.PRINT) in kinds

    def test_no_false_dependence_across_redefinition(self):
        func, analysis = setup(
            "void f() { int x; x = 1; x = 2; print(x); }"
        )
        deps = flow_dependences(analysis)
        copies = [i for i in func.walk_instrs() if i.op is Op.I2I]
        first_copy, second_copy = copies
        sinks_of_first = [d.sink.op for d in deps if d.source is first_copy]
        assert Op.PRINT not in sinks_of_first  # killed by the second copy
        assert any(
            d.source is second_copy and d.sink.op is Op.PRINT for d in deps
        )

    def test_loop_carried_dependence(self):
        func, analysis = setup(
            """
            void f() {
                int i;
                i = 0;
                while (i < 3) { i = i + 1; }
            }
            """
        )
        deps = flow_dependences(analysis)
        # The increment's copy feeds the loop-header compare (cycle through
        # the back edge), like the self-edge on node 7 in Figure 1.
        increment = [i for i in func.walk_instrs() if i.op is Op.I2I][-1]
        cmp_sinks = [
            d.sink.op for d in deps if d.source is increment
        ]
        assert Op.CMP_LT in cmp_sinks

    def test_dedup(self):
        func, analysis = setup("void f() { int x; x = 1; print(x); }")
        deps = flow_dependences(analysis)
        keys = [(id(d.source), id(d.sink), d.reg) for d in deps]
        assert len(keys) == len(set(keys))


class TestOtherKinds:
    def test_output_dependence_between_redefinitions(self):
        func, analysis = setup("void f() { int x; x = 1; x = 2; }")
        deps = all_dependences(analysis)
        assert any(d.kind == "output" for d in deps)

    def test_anti_dependence_use_then_redef(self):
        func, analysis = setup("void f() { int x; x = 1; print(x); x = 2; }")
        deps = all_dependences(analysis)
        anti = [d for d in deps if d.kind == "anti"]
        assert any(d.source.op is Op.PRINT for d in anti)


class TestRegionLevel:
    def test_figure1_style_edges(self):
        func, analysis = setup(
            """
            void f() {
                int i;
                i = 1;
                while (i < 10) { i = i + 1; }
                print(i);
            }
            """
        )
        lifted = region_level_dependences(func, analysis)
        names = {r.name for r in func.walk_regions()}
        for src, dst, kind in lifted:
            assert src in names and dst in names and kind == "flow"
        # There is at least one cross-region edge (i's def feeding the loop).
        assert any(src != dst for src, dst, _ in lifted)
