"""Reproduction of the paper's Figure 1.

The figure shows the PDG of:

    1: i := 1
    2: while (i < 10) {
    3:     j = i + 1
    4:     if (j == 7)
    5:         ...
       else
    6:         ...
    7:     i = i + 1
       }
    8: ...

with region nodes R1 (entry conditions), R2 (loop), R3 (loop body),
R4 (THEN branch), R5 (ELSE branch), data-dependence edges (1 -> 3 for i,
the self cycle on 7), and control-dependence structure.  This test builds
the same program through the front end and checks each structural claim.
"""

from repro.compiler import compile_source
from repro.ir.iloc import Op
from repro.pdg.datadeps import flow_dependences
from repro.pdg.liveness import FunctionAnalysis
from repro.pdg.nodes import Predicate, Region

FIGURE1_SOURCE = """
void f() {
    int i;
    int j;
    i = 1;                 /* statement 1 */
    while (i < 10) {       /* predicate P1, regions R2/R3 */
        j = i + 1;         /* statement 3 */
        if (j == 7) {      /* predicate P2, regions R4/R5 */
            print(4);      /* statement 5 (then) */
        } else {
            print(6);      /* statement 6 (else) */
        }
        i = i + 1;         /* statement 7 */
    }
    print(i);              /* statement 8 */
}
"""


def build():
    func = compile_source(FIGURE1_SOURCE).module.functions["f"]
    return func, FunctionAnalysis(func)


def find_loop(func):
    return next(
        item
        for item in func.entry.items
        if isinstance(item, Region) and item.is_loop
    )


class TestControlStructure:
    def test_entry_region_is_r1(self):
        func, _ = build()
        assert func.entry.kind == "entry"

    def test_loop_region_r2_under_entry(self):
        func, _ = build()
        loop = find_loop(func)
        assert loop.is_loop

    def test_loop_guard_predicate_p1_controls_body_r3(self):
        func, _ = build()
        loop = find_loop(func)
        guard = loop.items[-1]
        assert isinstance(guard, Predicate)
        assert guard.true_region is not None  # R3
        assert guard.false_region is None     # exiting the loop is implicit

    def test_if_predicate_p2_has_then_r4_and_else_r5(self):
        func, _ = build()
        body = find_loop(func).items[-1].true_region
        if_region = next(
            item
            for item in body.items
            if isinstance(item, Region)
            and any(isinstance(x, Predicate) for x in item.items)
        )
        pred = next(x for x in if_region.items if isinstance(x, Predicate))
        assert pred.true_region is not None and pred.false_region is not None

    def test_statement_regions_in_body(self):
        # j = i + 1; the if; i = i + 1  ->  three statement-level items.
        func, _ = build()
        body = find_loop(func).items[-1].true_region
        assert len([i for i in body.items if isinstance(i, Region)]) == 3

    def test_predicates_have_single_true_false_arcs(self):
        # "After region nodes are inserted, each predicate node has at most
        # one true outgoing edge and one false outgoing edge."
        func, _ = build()
        for region in func.walk_regions():
            for item in region.items:
                if isinstance(item, Predicate):
                    assert item.true_region is None or isinstance(
                        item.true_region, Region
                    )
                    assert item.false_region is None or isinstance(
                        item.false_region, Region
                    )


class TestDataDependence:
    def test_initial_def_of_i_reaches_loop_body(self):
        # Figure 1's edge from node 1 to node 3 (the use of i in j = i + 1).
        func, analysis = build()
        deps = flow_dependences(analysis)
        init_copy = next(i for i in func.walk_instrs() if i.op is Op.I2I)
        sinks = [d.sink.op for d in deps if d.source is init_copy]
        assert Op.ADD in sinks or Op.CMP_LT in sinks

    def test_increment_has_self_cycle_through_back_edge(self):
        # Figure 1's cyclic edge on node 7 (i = i + 1 feeds itself).
        func, analysis = build()
        deps = flow_dependences(analysis)
        increment = [i for i in func.walk_instrs() if i.op is Op.I2I][-1]
        feeds = [d.sink for d in deps if d.source is increment]
        # The incremented i reaches the add of the next iteration.
        assert any(sink.op is Op.ADD for sink in feeds)

    def test_loop_exit_value_reaches_statement8(self):
        func, analysis = build()
        deps = flow_dependences(analysis)
        prints = [i for i in func.walk_instrs() if i.op is Op.PRINT]
        final_print = prints[-1]
        sources = [d.source.op for d in deps if d.sink is final_print]
        assert Op.I2I in sources
