"""Tests for DOT export."""

from repro.compiler import compile_source
from repro.pdg.dot import to_dot

SRC = """
void f() {
    int i;
    i = 1;
    while (i < 10) {
        if (i == 7) { print(1); } else { print(2); }
        i = i + 1;
    }
}
"""


def test_dot_is_syntactically_plausible():
    func = compile_source(SRC).module.functions["f"]
    dot = to_dot(func)
    assert dot.startswith('digraph "f"')
    assert dot.rstrip().endswith("}")
    assert dot.count("{") == dot.count("}")


def test_dot_contains_predicate_and_loop_markers():
    func = compile_source(SRC).module.functions["f"]
    dot = to_dot(func)
    assert "diamond" in dot          # predicate node
    assert "(loop)" in dot           # loop region
    assert '[label="T"]' in dot and '[label="F"]' in dot


def test_dot_without_code_has_no_boxes():
    func = compile_source(SRC).module.functions["f"]
    dot = to_dot(func, include_code=False)
    assert "shape=box" not in dot


def test_dot_with_data_deps_adds_dashed_edges():
    func = compile_source(SRC).module.functions["f"]
    dot = to_dot(func, include_data_deps=True)
    assert "style=dashed" in dot
