"""Tests for the PDG structural verifier."""

import pytest

from repro.compiler import compile_source
from repro.ir import iloc
from repro.ir.iloc import Op, preg, vreg
from repro.pdg.graph import PDGFunction
from repro.pdg.nodes import Predicate, Region
from repro.pdg.validate import PDGValidationError, check_pdg
from repro.regalloc.rap.allocator import RAPContext
from repro.regalloc.rap.region_alloc import allocate_region

SOURCE = """
void main() {
    int i; int s; s = 0;
    for (i = 0; i < 5; i = i + 1) {
        if (i % 2 == 0) { s = s + i; }
    }
    print(s);
}
"""


class TestValidPrograms:
    def test_fresh_compile_is_valid(self):
        func = compile_source(SOURCE).module.functions["main"]
        check_pdg(func, expect_kind="v")

    def test_after_rap_phase1_still_valid(self):
        func = compile_source(SOURCE).fresh_module().functions["main"]
        ctx = RAPContext(func, 3)
        allocate_region(ctx, func.entry)
        check_pdg(func, expect_kind="v")  # rewrite has not happened yet

    def test_after_full_rap_physical(self):
        from repro.regalloc.rap import allocate_rap

        func = compile_source(SOURCE).fresh_module().functions["main"]
        allocate_rap(func, 3)
        check_pdg(func, expect_kind="p")


class TestViolations:
    def test_shared_instruction_detected(self):
        func = PDGFunction("t", "void", [])
        instr = iloc.loadi(1, vreg(0))
        func.entry.items.append(instr)
        func.entry.items.append(instr)
        with pytest.raises(PDGValidationError):
            check_pdg(func)

    def test_shared_region_detected(self):
        func = PDGFunction("t", "void", [])
        shared = Region()
        shared.items.append(iloc.loadi(1, vreg(0)))
        func.entry.items.append(shared)
        func.entry.items.append(shared)
        with pytest.raises(PDGValidationError):
            check_pdg(func)

    def test_loop_without_guard_detected(self):
        func = PDGFunction("t", "void", [])
        loop = Region(is_loop=True)
        loop.items.append(iloc.loadi(1, vreg(0)))
        func.entry.items.append(loop)
        with pytest.raises(PDGValidationError):
            check_pdg(func)

    def test_label_in_pdg_detected(self):
        func = PDGFunction("t", "void", [])
        func.entry.items.append(iloc.label("L"))
        with pytest.raises(PDGValidationError):
            check_pdg(func)

    def test_mixed_register_kinds_detected(self):
        func = PDGFunction("t", "void", [])
        func.entry.items.append(iloc.copy(vreg(0), preg(0)))
        with pytest.raises(PDGValidationError):
            check_pdg(func, expect_kind="v")

    def test_kind_check_optional(self):
        func = PDGFunction("t", "void", [])
        func.entry.items.append(iloc.copy(vreg(0), preg(0)))
        check_pdg(func)  # no kind requested: structural checks only
