"""Tests for PDG node structure."""

from repro.ir import iloc
from repro.ir.iloc import Op, vreg
from repro.pdg.nodes import Predicate, Region


def simple_region():
    region = Region(kind="stmt")
    region.items.append(iloc.loadi(1, vreg(0)))
    region.items.append(iloc.copy(vreg(0), vreg(1)))
    return region


class TestRegion:
    def test_names_are_unique(self):
        assert Region().name != Region().name

    def test_direct_instrs_includes_predicate_branch(self):
        region = Region()
        region.items.append(iloc.loadi(1, vreg(0)))
        region.items.append(Predicate(vreg(0), Region(), None))
        direct = region.direct_instrs()
        assert len(direct) == 2
        assert direct[1].op is Op.CBR

    def test_subregions_include_predicate_branches(self):
        then_r, else_r, plain = Region(), Region(), Region()
        region = Region()
        region.items.append(plain)
        region.items.append(Predicate(vreg(0), then_r, else_r))
        assert region.subregions() == [plain, then_r, else_r]

    def test_walk_regions_preorder(self):
        inner = Region()
        outer = Region()
        outer.items.append(inner)
        assert list(outer.walk_regions()) == [outer, inner]

    def test_walk_instrs_execution_order(self):
        inner = Region()
        inner.items.append(iloc.loadi(2, vreg(1)))
        outer = Region()
        first = iloc.loadi(1, vreg(0))
        outer.items.append(first)
        outer.items.append(Predicate(vreg(0), inner, None))
        ops = [i.op for i in outer.walk_instrs()]
        assert ops == [Op.LOADI, Op.CBR, Op.LOADI]
        assert next(outer.walk_instrs()) is first

    def test_referenced_regs(self):
        region = simple_region()
        assert region.referenced_regs() == {vreg(0), vreg(1)}

    def test_direct_referenced_excludes_subregions(self):
        sub = Region()
        sub.items.append(iloc.loadi(1, vreg(9)))
        region = simple_region()
        region.items.append(sub)
        assert vreg(9) not in region.direct_referenced_regs()
        assert vreg(9) in region.referenced_regs()

    def test_index_of_by_identity(self):
        region = simple_region()
        assert region.index_of(region.items[1]) == 1


class TestPredicate:
    def test_cond_mirrors_branch_sources(self):
        pred = Predicate(vreg(3))
        assert pred.cond == vreg(3)
        pred.branch.rewrite_regs({vreg(3): vreg(7)})
        assert pred.cond == vreg(7)

    def test_regions_listing(self):
        t, f = Region(), Region()
        assert Predicate(vreg(0), t, f).regions() == [t, f]
        assert Predicate(vreg(0), t, None).regions() == [t]
        assert Predicate(vreg(0)).regions() == []
