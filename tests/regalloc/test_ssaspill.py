"""The decoupled spill-then-color allocator's own guarantees."""

import pytest

from repro.bench.suite import all_programs, program
from repro.compiler import compile_source
from repro.regalloc import allocate_ssaspill
from repro.regalloc.chaitin import AllocationError

SPILLY = """
int f(int a, int b, int c, int d) {
    int e; int g; int h;
    e = a * b; g = c * d; h = a * d;
    return e + g + h + a + b + c + d;
}
void main() { print(f(2, 3, 5, 7)); }
"""


def allocate_all(source, k):
    prog = compile_source(source)
    module = prog.fresh_module()
    return [
        allocate_ssaspill(func, k) for func in module.functions.values()
    ]


class TestDecoupling:
    """Spilling lowers MAXLIVE to k; coloring then cannot fail."""

    @pytest.mark.parametrize("bench", all_programs(), ids=lambda b: b.name)
    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_maxlive_at_most_k_after_spilling(self, bench, k):
        prog = compile_source(bench.source(), filename=bench.filename)
        for func in prog.fresh_module().functions.values():
            result = allocate_ssaspill(func, k)
            assert result.cert is not None
            assert result.maxlive_final <= k
            # Zero coloring-time spills: every spill decision was made
            # in phase 1, so the slot set is exactly the spill list.
            assert len(result.cert.spill_slots) == len(result.spilled)
            assert set(result.assignment.values()) <= set(range(k))

    def test_spilly_function_spills_at_3_not_at_8(self):
        low = allocate_all(SPILLY, 3)
        high = allocate_all(SPILLY, 8)
        assert any(result.spilled for result in low)
        assert not any(result.spilled for result in high)

    def test_entry_maxlive_recorded(self):
        results = allocate_all(SPILLY, 3)
        f = next(r for r in results if r.name == "f")
        assert f.maxlive_entry > 3 >= f.maxlive_final


class TestTelemetry:
    def test_phase_counters_surface(self):
        results = allocate_all(SPILLY, 3)
        for result in results:
            counters = result.telemetry()
            for key in (
                "phis",
                "maxlive_entry",
                "maxlive_final",
                "parallel_copies",
                "cycle_breaks",
            ):
                assert key in counters

    def test_loop_program_has_phis(self):
        prog = compile_source(program("sieve").source())
        results = [
            allocate_ssaspill(func, 5)
            for func in prog.fresh_module().functions.values()
        ]
        assert any(result.phis for result in results)


class TestLimits:
    def test_k_below_3_rejected(self):
        prog = compile_source(SPILLY)
        func = next(iter(prog.fresh_module().functions.values()))
        with pytest.raises(ValueError):
            allocate_ssaspill(func, 2)
