"""Tests for the graph-editing operations RAP's extensions rely on
(absorb_members, drop_member, remove_node)."""

import pytest

from repro.ir.iloc import vreg
from repro.regalloc.interference import InterferenceGraph


def build():
    graph = InterferenceGraph()
    graph.add_edge(vreg(0), vreg(1))
    graph.add_edge(vreg(1), vreg(2))
    return graph


class TestRemoveNode:
    def test_edges_detached(self):
        graph = build()
        node = graph.node_of(vreg(1))
        graph.remove_node(node)
        assert vreg(1) not in graph
        assert graph.node_of(vreg(0)).degree == 0
        assert graph.node_of(vreg(2)).degree == 0
        graph.check_invariants()

    def test_node_list_shrinks(self):
        graph = build()
        before = len(graph.nodes)
        graph.remove_node(graph.node_of(vreg(0)))
        assert len(graph.nodes) == before - 1


class TestAbsorbMembers:
    def test_new_members_share_conflicts(self):
        graph = build()
        node = graph.node_of(vreg(0))
        graph.absorb_members(node, [vreg(7), vreg(8)])
        assert graph.node_of(vreg(7)) is node
        assert graph.interferes(vreg(7), vreg(1))
        graph.check_invariants()

    def test_absorbing_own_member_is_noop(self):
        graph = build()
        node = graph.node_of(vreg(0))
        graph.absorb_members(node, [vreg(0)])
        assert node.members == {vreg(0)}

    def test_absorbing_foreign_member_rejected(self):
        graph = build()
        node = graph.node_of(vreg(0))
        with pytest.raises(ValueError):
            graph.absorb_members(node, [vreg(2)])


class TestDropMember:
    def test_drop_keeps_rest_of_group(self):
        graph = InterferenceGraph()
        node = graph.add_group([vreg(0), vreg(1)])
        graph.add_edge(vreg(0), vreg(5))
        graph.drop_member(vreg(0))
        assert vreg(0) not in graph
        assert vreg(1) in graph
        # The group's conflicts survive for the remaining member.
        assert graph.interferes(vreg(1), vreg(5))
        graph.check_invariants()

    def test_drop_last_member_removes_node(self):
        graph = build()
        graph.drop_member(vreg(2))
        assert vreg(2) not in graph
        assert all(vreg(2) not in n.members for n in graph.nodes)
        graph.check_invariants()

    def test_drop_unknown_is_noop(self):
        graph = build()
        graph.drop_member(vreg(99))
        graph.check_invariants()
