"""Tests for simplify/select coloring."""

from repro.ir.iloc import vreg
from repro.regalloc.coloring import (
    INFINITE_COST,
    color_graph,
    effective_degree,
)
from repro.regalloc.interference import InterferenceGraph


def build_graph(n_nodes, edges, costs=None):
    graph = InterferenceGraph()
    for i in range(n_nodes):
        graph.ensure(vreg(i))
    for a, b in edges:
        graph.add_edge(vreg(a), vreg(b))
    for node in graph.nodes:
        node.spill_cost = 1.0
    if costs:
        for index, cost in costs.items():
            graph.node_of(vreg(index)).spill_cost = cost
    return graph


def validate(graph, result, k):
    for node, color in result.colors.items():
        assert 0 <= color < k
        for neighbor in node.adj:
            if neighbor in result.colors:
                assert result.colors[neighbor] != color


class TestBasicColoring:
    def test_triangle_needs_three_colors(self):
        graph = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        result = color_graph(graph, 3)
        assert result.succeeded
        assert len({result.colors[n] for n in graph.nodes}) == 3
        validate(graph, result, 3)

    def test_triangle_with_two_colors_spills(self):
        graph = build_graph(3, [(0, 1), (1, 2), (0, 2)])
        result = color_graph(graph, 2)
        assert not result.succeeded
        assert len(result.spilled) >= 1

    def test_empty_graph(self):
        result = color_graph(InterferenceGraph(), 3)
        assert result.succeeded and result.colors == {}

    def test_independent_nodes_share_first_color(self):
        graph = build_graph(4, [])
        result = color_graph(graph, 3)
        assert {result.colors[n] for n in graph.nodes} == {0}  # first fit

    def test_star_graph(self):
        graph = build_graph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        result = color_graph(graph, 2)
        assert result.succeeded
        validate(graph, result, 2)

    def test_cheapest_node_spilled(self):
        # K4 with k=3: one node must go; pick the cheapest.
        graph = build_graph(
            4,
            [(a, b) for a in range(4) for b in range(a + 1, 4)],
            costs={2: 0.1},
        )
        result = color_graph(graph, 3)
        assert [vreg(2)] == [
            reg for node in result.spilled for reg in node.members
        ]

    def test_infinite_cost_nodes_avoided(self):
        graph = build_graph(
            4,
            [(a, b) for a in range(4) for b in range(a + 1, 4)],
            costs={0: INFINITE_COST, 1: INFINITE_COST, 2: INFINITE_COST},
        )
        result = color_graph(graph, 3)
        spilled = {reg for node in result.spilled for reg in node.members}
        assert spilled == {vreg(3)}


class TestBriggsOptimism:
    def test_optimistic_colors_diamond_that_chaitin_spills(self):
        # The classic diamond: 4-cycle, every node degree 2, k=2.
        # Chaitin's rule (degree < k) finds no trivial node and spills;
        # Briggs pushes optimistically and 2-colors it.
        graph = build_graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        optimistic = color_graph(graph, 2, optimistic=True)
        assert optimistic.succeeded
        validate(graph, optimistic, 2)

        graph2 = build_graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        pessimistic = color_graph(graph2, 2, optimistic=False)
        assert not pessimistic.succeeded

    def test_briggs_spills_subset_of_chaitin(self):
        # On a graph where both spill, Briggs never spills more.
        edges = [(a, b) for a in range(5) for b in range(a + 1, 5)]  # K5
        graph_b = build_graph(5, edges)
        graph_c = build_graph(5, edges)
        briggs = color_graph(graph_b, 3, optimistic=True)
        chaitin = color_graph(graph_c, 3, optimistic=False)
        assert len(briggs.spilled) <= len(chaitin.spilled)


class TestGlobalRule:
    def test_global_nodes_get_distinct_colors_without_edges(self):
        graph = build_graph(3, [])
        global_nodes = set(graph.nodes)
        result = color_graph(graph, 3, global_nodes=global_nodes)
        assert result.succeeded
        colors = [result.colors[n] for n in graph.nodes]
        assert len(set(colors)) == 3

    def test_local_may_share_with_global(self):
        graph = build_graph(2, [])
        global_nodes = {graph.node_of(vreg(0))}
        result = color_graph(graph, 3, global_nodes=global_nodes)
        assert result.colors[graph.node_of(vreg(0))] == result.colors[
            graph.node_of(vreg(1))
        ]

    def test_too_many_globals_spill(self):
        graph = build_graph(4, [])
        result = color_graph(graph, 3, global_nodes=set(graph.nodes))
        assert not result.succeeded

    def test_effective_degree_counts_nonadjacent_globals(self):
        graph = build_graph(3, [(0, 1)])
        nodes = {i: graph.node_of(vreg(i)) for i in range(3)}
        global_nodes = {nodes[0], nodes[2]}
        # node 0: one real neighbor + one non-adjacent global (node 2).
        assert effective_degree(nodes[0], global_nodes) == 2
        # node 1 is local: plain degree.
        assert effective_degree(nodes[1], global_nodes) == 1


class TestDeterminism:
    def test_same_graph_same_coloring(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]
        first = color_graph(build_graph(5, edges), 3)
        second = color_graph(build_graph(5, edges), 3)
        a = sorted((min(n.members), c) for n, c in first.colors.items())
        b = sorted((min(n.members), c) for n, c in second.colors.items())
        assert a == b
