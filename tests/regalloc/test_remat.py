"""Tests for the rematerialization extension."""

import pytest

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg
from repro.pdg.linearize import linearize
from repro.regalloc import allocate_gra, allocate_rap
from repro.regalloc.remat import (
    constant_registers,
    rematerialize_linear,
    sweep_dead_defs_linear,
)

# Six loop-invariant constants force spilling at k=3; all are
# rematerializable, so remat should wipe out the spill memory traffic.
CONSTANT_PRESSURE = """
void main() {
    int a; int b; int c; int d; int e; int f; int i; int s;
    a = 1; b = 2; c = 3; d = 4; e = 5; f = 6;
    s = 0;
    for (i = 0; i < 20; i = i + 1) {
        s = s + a + b + c + d + e + f;
    }
    print(s);
    print(a + b - c + d - e + f);
}
"""


def run_with(source, allocator, k, **kwargs):
    prog = compile_source(source)
    reference = run_program(prog.reference_image())
    module = prog.fresh_module()
    functions = {}
    results = {}
    for name, func in module.functions.items():
        result = allocator(func, k, **kwargs)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
        results[name] = result
    stats = run_program(ProgramImage(list(module.globals.values()), functions))
    assert stats.output == reference.output
    return stats, results


class TestConstantAnalysis:
    def test_loadi_is_constant(self):
        code = [iloc.loadi(5, vreg(0))]
        assert constant_registers(code) == {vreg(0): 5}

    def test_copy_chain_resolves(self):
        code = [
            iloc.loadi(5, vreg(0)),
            iloc.copy(vreg(0), vreg(1)),
            iloc.copy(vreg(1), vreg(2)),
        ]
        constants = constant_registers(code)
        assert constants[vreg(2)] == 5

    def test_conflicting_defs_not_constant(self):
        code = [
            iloc.loadi(5, vreg(0)),
            iloc.loadi(6, vreg(0)),
        ]
        assert vreg(0) not in constant_registers(code)

    def test_same_constant_from_two_defs_ok(self):
        code = [
            iloc.loadi(5, vreg(0)),
            iloc.loadi(5, vreg(0)),
        ]
        assert constant_registers(code)[vreg(0)] == 5

    def test_computed_value_not_constant(self):
        code = [
            iloc.loadi(5, vreg(0)),
            iloc.binary(Op.ADD, vreg(0), vreg(0), vreg(1)),
        ]
        assert vreg(1) not in constant_registers(code)

    def test_int_float_distinguished(self):
        code = [iloc.loadi(5, vreg(0)), iloc.loadi(5.0, vreg(1))]
        constants = constant_registers(code)
        assert type(constants[vreg(0)]) is int
        assert type(constants[vreg(1)]) is float

    def test_mixed_int_float_defs_not_constant(self):
        code = [iloc.loadi(5, vreg(0)), iloc.loadi(5.0, vreg(0))]
        assert vreg(0) not in constant_registers(code)


class TestLinearTransform:
    def test_uses_fed_by_fresh_loadis(self):
        counter = [10]

        def new_vreg():
            counter[0] += 1
            return vreg(counter[0])

        code = [
            iloc.loadi(5, vreg(0)),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            Instr(Op.PRINT, srcs=[vreg(0)]),
        ]
        out, temps = rematerialize_linear(code, vreg(0), 5, new_vreg)
        assert [i.op for i in out] == [Op.LOADI, Op.PRINT, Op.LOADI, Op.PRINT]
        assert len(temps) == 2
        assert all(i.imm == 5 for i in out if i.op is Op.LOADI)

    def test_defs_deleted(self):
        code = [iloc.loadi(5, vreg(0)), Instr(Op.RET)]
        out, temps = rematerialize_linear(code, vreg(0), 5, lambda: vreg(99))
        assert [i.op for i in out] == [Op.RET]
        assert temps == set()

    def test_sweep_removes_dead_chains(self):
        code = [
            iloc.loadi(5, vreg(0)),
            iloc.copy(vreg(0), vreg(1)),   # v1 dead after v2's removal
            iloc.copy(vreg(1), vreg(2)),   # v2 dead
            Instr(Op.RET),
        ]
        out = sweep_dead_defs_linear(code)
        assert [i.op for i in out] == [Op.RET]

    def test_sweep_keeps_impure_defs(self):
        code = [
            iloc.loadi(4096, vreg(0)),
            iloc.load(vreg(0), vreg(1)),  # heap load: not swept
            Instr(Op.RET),
        ]
        out = sweep_dead_defs_linear(code)
        assert Op.LOAD in [i.op for i in out]


class TestAllocatorsWithRemat:
    @pytest.mark.parametrize("allocator", [allocate_gra, allocate_rap])
    def test_behaviour_preserved(self, allocator):
        run_with(CONSTANT_PRESSURE, allocator, 3, remat=True)

    def test_gra_remat_eliminates_spill_memory_traffic(self):
        plain, _ = run_with(CONSTANT_PRESSURE, allocate_gra, 3)
        remat, _ = run_with(CONSTANT_PRESSURE, allocate_gra, 3, remat=True)
        assert remat.total.loads < plain.total.loads
        assert remat.total.stores <= plain.total.stores
        assert remat.total.cycles <= plain.total.cycles

    def test_rap_remat_reduces_loads(self):
        plain, _ = run_with(CONSTANT_PRESSURE, allocate_rap, 3)
        remat, results = run_with(CONSTANT_PRESSURE, allocate_rap, 3, remat=True)
        assert remat.total.loads < plain.total.loads
        assert results["main"].rematerialized

    def test_remat_log_records_constants(self):
        _, results = run_with(CONSTANT_PRESSURE, allocate_rap, 3, remat=True)
        for reg, value in results["main"].rematerialized:
            assert value in (1, 2, 3, 4, 5, 6, 0)

    def test_no_remat_without_flag(self):
        _, results = run_with(CONSTANT_PRESSURE, allocate_rap, 3)
        assert not results["main"].rematerialized

    def test_non_constant_values_still_spill(self):
        # s accumulates: not rematerializable; must still work at k=3.
        source = """
        void main() {
            int a; int b; int c; int d; int i;
            a = 1; b = 2; c = 3; d = 4;
            for (i = 0; i < 5; i = i + 1) {
                a = a + b; b = b + c; c = c + d; d = d + a;
            }
            print(a + b + c + d);
        }
        """
        for allocator in (allocate_gra, allocate_rap):
            run_with(source, allocator, 3, remat=True)
