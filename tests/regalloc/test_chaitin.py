"""Tests for the GRA baseline allocator."""

import pytest

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.iloc import Op, preg
from repro.ir.validate import check_allocated, check_wellformed
from repro.pdg.linearize import linearize
from repro.regalloc.chaitin import (
    AllocationError,
    allocate_gra,
    build_interference,
)

LOOPY = """
int a[32];
int f(int n) {
    int i; int s; int t;
    s = 0; t = 1;
    for (i = 0; i < n; i = i + 1) {
        s = s + a[i] * t;
        t = t + i;
    }
    return s + t;
}
void main() {
    int i;
    for (i = 0; i < 32; i = i + 1) { a[i] = i; }
    print(f(20));
}
"""


def run_with_gra(source, k, **kwargs):
    prog = compile_source(source)
    reference = run_program(prog.reference_image())
    module = prog.fresh_module()
    functions = {}
    results = {}
    for name, func in module.functions.items():
        result = allocate_gra(func, k, **kwargs)
        check_wellformed(result.code)
        check_allocated(result.code, k)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
        results[name] = result
    stats = run_program(ProgramImage(list(module.globals.values()), functions))
    assert stats.output == reference.output
    return stats, results, reference


class TestEndToEnd:
    @pytest.mark.parametrize("k", [3, 4, 5, 8, 16])
    def test_behaviour_preserved_at_every_k(self, k):
        run_with_gra(LOOPY, k)

    def test_no_spills_with_many_registers(self):
        _, results, _ = run_with_gra(LOOPY, 16)
        assert results["f"].spilled == []
        assert results["f"].rounds == 1

    def test_spills_with_few_registers(self):
        _, results, _ = run_with_gra(LOOPY, 3)
        assert results["f"].spilled != []
        assert results["f"].rounds > 1

    def test_more_registers_never_slower(self):
        cycles = []
        for k in (3, 5, 9):
            stats, _, _ = run_with_gra(LOOPY, k)
            cycles.append(stats.total.cycles)
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_assignment_maps_every_vreg(self):
        prog = compile_source(LOOPY)
        func = prog.fresh_module().functions["f"]
        referenced = {r for r in func.referenced_regs() if r.is_virtual}
        result = allocate_gra(func, 8)
        assert referenced <= set(result.assignment)

    def test_self_copies_removed(self):
        _, results, _ = run_with_gra(LOOPY, 8)
        for result in results.values():
            for instr in result.code:
                if instr.op is Op.I2I:
                    assert instr.srcs[0] != instr.dst

    def test_k_below_three_rejected(self):
        prog = compile_source("void f() { }")
        with pytest.raises(ValueError):
            allocate_gra(prog.fresh_module().functions["f"], 2)

    def test_source_function_not_mutated(self):
        prog = compile_source(LOOPY)
        module = prog.fresh_module()
        # Linearize once so predicate branch labels are populated; they are
        # refreshed by every linearization and are not semantic state.
        linearize(module.functions["f"])
        before = [str(i) for i in module.functions["f"].walk_instrs()]
        allocate_gra(module.functions["f"], 3)
        after = [str(i) for i in module.functions["f"].walk_instrs()]
        assert before == after

    def test_pessimistic_mode_also_correct(self):
        run_with_gra(LOOPY, 4, optimistic=False)


class TestInterferenceConstruction:
    def test_copy_operands_do_not_interfere_in_straightline(self):
        prog = compile_source("void f() { int x; x = 1 + 2; print(x); }")
        func = prog.fresh_module().functions["f"]
        code = [i.clone() for i in linearize(func).instrs]
        graph = build_interference(code)
        copy = next(i for i in code if i.op is Op.I2I)
        assert not graph.interferes(copy.srcs[0], copy.dst)

    def test_simultaneously_live_values_interfere(self):
        prog = compile_source(
            "void f() { int x; int y; x = 1; y = 2; print(x + y); }"
        )
        func = prog.fresh_module().functions["f"]
        code = [i.clone() for i in linearize(func).instrs]
        graph = build_interference(code)
        copies = [i for i in code if i.op is Op.I2I]
        x, y = copies[0].dst, copies[1].dst
        assert graph.interferes(x, y)

    def test_disjoint_lifetimes_do_not_interfere(self):
        prog = compile_source(
            "void f() { int x; int y; x = 1; print(x); y = 2; print(y); }"
        )
        func = prog.fresh_module().functions["f"]
        code = [i.clone() for i in linearize(func).instrs]
        graph = build_interference(code)
        copies = [i for i in code if i.op is Op.I2I]
        assert not graph.interferes(copies[0].dst, copies[1].dst)


class TestLoopWeightedCosts:
    def test_behaviour_preserved(self):
        run_with_gra(LOOPY, 3, loop_weight=True)
        run_with_gra(LOOPY, 5, loop_weight=True)

    def test_loop_resident_values_protected(self):
        # With weighting, the loop-carried accumulators cost ~10x more to
        # spill, so loop-interior spill traffic should not increase.
        plain, _, _ = run_with_gra(LOOPY, 3)
        weighted, _, _ = run_with_gra(LOOPY, 3, loop_weight=True)
        assert weighted.total.loads <= plain.total.loads
