"""Tests for the group-based interference graph."""

import pytest

from repro.ir.iloc import vreg
from repro.regalloc.interference import IGNode, InterferenceGraph


def graph_with(*edges):
    graph = InterferenceGraph()
    for a, b in edges:
        graph.add_edge(vreg(a), vreg(b))
    return graph


class TestBasics:
    def test_ensure_creates_singleton(self):
        graph = InterferenceGraph()
        node = graph.ensure(vreg(1))
        assert node.members == {vreg(1)}
        assert graph.node_of(vreg(1)) is node

    def test_ensure_idempotent(self):
        graph = InterferenceGraph()
        assert graph.ensure(vreg(1)) is graph.ensure(vreg(1))

    def test_add_edge_is_symmetric(self):
        graph = graph_with((1, 2))
        assert graph.interferes(vreg(1), vreg(2))
        assert graph.interferes(vreg(2), vreg(1))

    def test_self_edge_ignored(self):
        graph = InterferenceGraph()
        graph.add_edge(vreg(1), vreg(1))
        assert graph.ensure(vreg(1)).degree == 0

    def test_edge_count(self):
        graph = graph_with((1, 2), (2, 3), (1, 2))
        assert graph.edge_count() == 2

    def test_unknown_registers_do_not_interfere(self):
        graph = graph_with((1, 2))
        assert not graph.interferes(vreg(1), vreg(9))

    def test_contains(self):
        graph = graph_with((1, 2))
        assert vreg(1) in graph and vreg(9) not in graph


class TestMerging:
    def test_union_merges_members_and_edges(self):
        graph = graph_with((1, 3), (2, 4))
        node = graph.union(vreg(1), vreg(2))
        assert node.members == {vreg(1), vreg(2)}
        assert graph.interferes(vreg(1), vreg(4))
        assert graph.interferes(vreg(2), vreg(3))

    def test_union_of_interfering_nodes_rejected(self):
        graph = graph_with((1, 2))
        with pytest.raises(ValueError):
            graph.union(vreg(1), vreg(2))

    def test_union_accumulates_spill_cost(self):
        graph = InterferenceGraph()
        graph.ensure(vreg(1)).spill_cost = 2.0
        graph.ensure(vreg(2)).spill_cost = 3.0
        assert graph.union(vreg(1), vreg(2)).spill_cost == 5.0

    def test_add_group(self):
        graph = InterferenceGraph()
        node = graph.add_group([vreg(1), vreg(2), vreg(3)])
        assert node.members == {vreg(1), vreg(2), vreg(3)}
        assert len(graph.nodes) == 1

    def test_neighbors_rewired_after_merge(self):
        graph = graph_with((1, 5), (2, 5))
        graph.union(vreg(1), vreg(2))
        five = graph.node_of(vreg(5))
        assert five.degree == 1

    def test_rename_member(self):
        graph = graph_with((1, 2))
        graph.rename_member(vreg(1), vreg(9))
        assert vreg(1) not in graph
        assert graph.interferes(vreg(9), vreg(2))

    def test_rename_absent_is_noop(self):
        graph = graph_with((1, 2))
        graph.rename_member(vreg(7), vreg(9))
        assert vreg(9) not in graph

    def test_invariants_hold_after_mutations(self):
        graph = graph_with((1, 2), (3, 4), (1, 4))
        graph.union(vreg(2), vreg(3))
        graph.rename_member(vreg(4), vreg(7))
        graph.check_invariants()
