"""Tests for linear spill-code insertion."""

from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg
from repro.regalloc.spill import spill_linear


def new_vreg_factory(start=100):
    state = {"next": start}

    def new_vreg():
        reg = vreg(state["next"])
        state["next"] += 1
        return reg

    return new_vreg


def slot_name(reg):
    return f"f.{reg}"


class TestSpillLinear:
    def test_load_before_each_use(self):
        code = [
            iloc.loadi(1, vreg(0)),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            Instr(Op.RET),
        ]
        out, temps = spill_linear(code, [vreg(0)], new_vreg_factory(), slot_name)
        ldms = [i for i in out if i.op is Op.LDM]
        assert len(ldms) == 2
        # Each use reads a fresh temporary.
        assert len({i.dst for i in ldms}) == 2
        assert temps == {i.dst for i in out if i.op is Op.LDM} | {
            i.srcs[0] for i in out if i.op is Op.STM
        }

    def test_store_after_each_def(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(0)),
            Instr(Op.RET),
        ]
        out, _ = spill_linear(code, [vreg(0)], new_vreg_factory(), slot_name)
        assert [i.op for i in out] == [
            Op.LOADI,
            Op.STM,
            Op.LOADI,
            Op.STM,
            Op.RET,
        ]

    def test_use_and_def_share_one_temp(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.binary(Op.ADD, vreg(0), vreg(0), vreg(0)),
            Instr(Op.RET),
        ]
        out, _ = spill_linear(code, [vreg(0)], new_vreg_factory(), slot_name)
        add = next(i for i in out if i.op is Op.ADD)
        assert add.srcs[0] == add.srcs[1] == add.dst
        # load before, store after.
        position = out.index(add)
        assert out[position - 1].op is Op.LDM
        assert out[position + 1].op is Op.STM

    def test_untouched_instructions_pass_through(self):
        code = [iloc.loadi(1, vreg(1)), Instr(Op.RET)]
        out, temps = spill_linear(code, [vreg(0)], new_vreg_factory(), slot_name)
        assert out == code and temps == set()

    def test_victim_register_fully_renamed(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.binary(Op.ADD, vreg(0), vreg(1), vreg(2)),
            Instr(Op.RET, srcs=[vreg(2)]),
        ]
        out, _ = spill_linear(code, [vreg(0)], new_vreg_factory(), slot_name)
        for instr in out:
            if instr.op not in (Op.LDM, Op.STM):
                assert vreg(0) not in instr.regs()

    def test_slot_names_stable_per_register(self):
        code = [
            iloc.loadi(1, vreg(0)),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            Instr(Op.RET),
        ]
        out, _ = spill_linear(code, [vreg(0)], new_vreg_factory(), slot_name)
        addrs = {i.addr.name for i in out if i.op in (Op.LDM, Op.STM)}
        assert addrs == {"f.%v0"}
