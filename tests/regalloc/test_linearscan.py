"""Linear-scan allocation: the ladder rung between GRA and spillall."""

import pytest

from repro.bench.harness import Harness
from repro.bench.suite import program
from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.spillcheck import check_spill_discipline
from repro.ir.validate import check_allocated, check_assignment, check_wellformed
from repro.regalloc import allocate_linearscan

PROGRAMS = {
    "arith": "void main() { int a; int b; a = 6; b = 7; print(a * b); }",
    "loop": """
        void main() { int i; int s; s = 0;
            for (i = 0; i < 10; i = i + 1) { s = s + i; }
            print(s); }
        """,
    "calls": """
        int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        void main() { print(fib(12)); }
        """,
    "pressure": """
        int f(int a, int b, int c, int d) {
            int e; int g; int h;
            e = a * b; g = c * d; h = a * d;
            return e + g + h + a + b + c + d;
        }
        void main() { print(f(2, 3, 5, 7)); }
        """,
    "floats": "void main() { float x; x = 1.5; print(x * 4.0); }",
}


def run_linearscan(source, k):
    prog = compile_source(source)
    expected = run_program(prog.reference_image()).output
    module = prog.fresh_module()
    functions = {}
    results = {}
    for name, func in module.functions.items():
        result = allocate_linearscan(func, k)
        check_wellformed(result.code)
        check_allocated(result.code, k)
        check_assignment(result.virtual_code, result.assignment)
        check_spill_discipline(result.code, initialized=param_slots(func))
        functions[name] = FunctionImage(name, result.code, param_slots(func))
        results[name] = result
    image = ProgramImage(list(module.globals.values()), functions)
    return run_program(image).output, expected, results


class TestLinearScan:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_correct_at_minimum_k(self, name):
        actual, expected, _ = run_linearscan(PROGRAMS[name], 3)
        assert actual == expected

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_correct_at_larger_k(self, name):
        actual, expected, _ = run_linearscan(PROGRAMS[name], 8)
        assert actual == expected

    def test_spills_under_pressure_only(self):
        _, _, tight = run_linearscan(PROGRAMS["pressure"], 3)
        assert tight["f"].spilled
        _, _, roomy = run_linearscan(PROGRAMS["pressure"], 16)
        assert not roomy["f"].spilled

    def test_k_below_three_rejected(self):
        prog = compile_source(PROGRAMS["arith"])
        func = next(iter(prog.fresh_module().functions.values()))
        with pytest.raises(ValueError):
            allocate_linearscan(func, 2)

    def test_source_function_not_mutated(self):
        prog = compile_source(PROGRAMS["loop"])
        func = prog.fresh_module().functions["main"]
        allocate_linearscan(func, 3)
        assert any(
            reg.is_virtual
            for instr in func.walk_instrs()
            for reg in instr.regs()
        )

    def test_ignores_foreign_kwargs(self):
        prog = compile_source(PROGRAMS["arith"])
        func = prog.fresh_module().functions["main"]
        allocate_linearscan(func, 3, enable_motion=False, pre_coalesce=True)


class TestLadderPosition:
    """The whole point of the rung: measurably better than spill-everywhere,
    without claiming GRA's precision."""

    def test_cycles_between_gra_and_spillall(self):
        bench = program("sieve")
        harness = Harness([bench])
        cycles = {}
        for allocator in ("gra", "linearscan", "spillall"):
            run = harness.run(bench, allocator, 3)
            assert not run.fallbacks_taken
            assert run.stats.output == harness.reference_output(bench)
            cycles[allocator] = run.stats.total.cycles
        assert cycles["gra"] < cycles["linearscan"] < cycles["spillall"]

    def test_more_registers_never_hurt(self):
        bench = program("sieve")
        harness = Harness([bench])
        tight = harness.run(bench, "linearscan", 3).stats.total.cycles
        roomy = harness.run(bench, "linearscan", 8).stats.total.cycles
        assert roomy <= tight
