"""Tests for the conservative coalescing extension."""

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.iloc import Op
from repro.regalloc import allocate_gra, allocate_rap
from repro.regalloc.coalesce import coalesce_function

SRC = """
int f(int n) {
    int i; int s;
    s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
void main() { print(f(10)); }
"""


def reference_of(source):
    prog = compile_source(source)
    return prog, run_program(prog.reference_image())


class TestCoalesce:
    def test_removes_copies(self):
        prog, _ = reference_of(SRC)
        func = prog.fresh_module().functions["f"]
        before = sum(1 for i in func.walk_instrs() if i.op is Op.I2I)
        report = coalesce_function(func, 8)
        after = sum(1 for i in func.walk_instrs() if i.op is Op.I2I)
        assert report.coalesced > 0
        assert after == before - report.coalesced

    def test_behaviour_preserved_under_both_allocators(self):
        prog, reference = reference_of(SRC)
        for allocator in (allocate_gra, allocate_rap):
            module = prog.fresh_module()
            functions = {}
            for name, func in module.functions.items():
                coalesce_function(func, 5)
                result = allocator(func, 5)
                functions[name] = FunctionImage(
                    name, result.code, param_slots(func)
                )
            stats = run_program(
                ProgramImage(list(module.globals.values()), functions)
            )
            assert stats.output == reference.output

    def test_never_merges_interfering_copy(self):
        # x and y are simultaneously live; the copy y = x must survive.
        src = """
        void main() {
            int x; int y;
            x = 1;
            y = x;
            x = x + 1;
            print(x + y);
        }
        """
        prog, reference = reference_of(src)
        func = prog.fresh_module().functions["main"]
        coalesce_function(func, 8)
        module_funcs = {
            "main": FunctionImage(
                "main",
                allocate_gra(func, 8).code,
                param_slots(func),
            )
        }
        stats = run_program(ProgramImage([], module_funcs))
        assert stats.output == reference.output == [3]

    def test_report_pairs_are_consistent(self):
        prog, _ = reference_of(SRC)
        func = prog.fresh_module().functions["f"]
        report = coalesce_function(func, 8)
        assert len(report.merged_pairs) == report.coalesced
        referenced = func.referenced_regs()
        for dst, src in report.merged_pairs:
            assert dst not in referenced  # dst rewritten away

    def test_idempotent_after_fixpoint(self):
        prog, _ = reference_of(SRC)
        func = prog.fresh_module().functions["f"]
        coalesce_function(func, 8)
        second = coalesce_function(func, 8)
        assert second.coalesced == 0
