"""The spill-everywhere fallback allocator."""

import pytest

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.validate import check_allocated, check_wellformed
from repro.regalloc import allocate_spillall

PROGRAMS = {
    "arith": "void main() { int a; int b; a = 6; b = 7; print(a * b); }",
    "loop": """
        void main() { int i; int s; s = 0;
            for (i = 0; i < 10; i = i + 1) { s = s + i; }
            print(s); }
        """,
    "calls": """
        int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        void main() { print(fib(12)); }
        """,
    "self_update": "void main() { int a; a = 5; a = a + a; print(a); }",
    "floats": "void main() { float x; x = 1.5; print(x * 4.0); }",
}


def run_spillall(source, k):
    prog = compile_source(source)
    expected = run_program(prog.reference_image()).output
    module = prog.fresh_module()
    functions = {}
    for name, func in module.functions.items():
        result = allocate_spillall(func, k)
        check_wellformed(result.code)
        check_allocated(result.code, k)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
    image = ProgramImage(list(module.globals.values()), functions)
    return run_program(image).output, expected


class TestSpillall:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_correct_at_minimum_k(self, name):
        actual, expected = run_spillall(PROGRAMS[name], 3)
        assert actual == expected

    def test_correct_at_larger_k(self):
        actual, expected = run_spillall(PROGRAMS["calls"], 8)
        assert actual == expected

    def test_k_below_three_rejected(self):
        prog = compile_source(PROGRAMS["arith"])
        func = next(iter(prog.fresh_module().functions.values()))
        with pytest.raises(ValueError):
            allocate_spillall(func, 2)

    def test_result_shape(self):
        prog = compile_source(PROGRAMS["self_update"])
        func = prog.fresh_module().functions["main"]
        result = allocate_spillall(func, 3)
        # Every virtual register is reported spilled; no cross-instruction
        # assignment exists.
        assert result.spilled
        assert result.assignment == {}
        assert result.virtual_code is not None
        # The original function is not mutated.
        assert any(
            reg.is_virtual
            for instr in func.walk_instrs()
            for reg in instr.regs()
        )

    def test_ignores_foreign_kwargs(self):
        prog = compile_source(PROGRAMS["arith"])
        func = prog.fresh_module().functions["main"]
        allocate_spillall(func, 3, max_rounds=5, enable_motion=False)
