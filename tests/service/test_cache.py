"""The content-addressed artifact cache: keys, LRU accounting, disk tier,
shard routing, miss-kind classification, and the 8-thread hammer."""

import hashlib
import json
import os
import threading

from repro.interp.serialize import FORMAT_VERSION
from repro.resilience.pipeline import PipelineConfig
from repro.service.cache import (
    ArtifactCache,
    CacheEntry,
    cache_key,
    key_components,
    source_fingerprint,
)

SOURCE = "void main() { print(1); }"


def _blob(tag: str, size: int = 64) -> bytes:
    """A fake canonical payload of a controlled size."""
    body = {"version": FORMAT_VERSION, "tag": tag}
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return (text + " " * max(0, size - len(text))).encode()


class TestCacheKey:
    def test_every_input_perturbs_the_key(self):
        base = cache_key(SOURCE, "rap", 5)
        assert cache_key(SOURCE, "rap", 5) == base  # deterministic
        assert cache_key(SOURCE + " ", "rap", 5) != base
        assert cache_key(SOURCE, "gra", 5) != base
        assert cache_key(SOURCE, "rap", 7) != base
        assert cache_key(SOURCE, "rap", 5, schedule=True) != base

    def test_pipeline_config_participates(self):
        base = cache_key(SOURCE, "rap", 5)
        loose = cache_key(
            SOURCE, "rap", 5, config=PipelineConfig(verify_motion=False)
        )
        merged = cache_key(
            SOURCE, "rap", 5, config=PipelineConfig(granularity="merged")
        )
        assert len({base, loose, merged}) == 3
        # The default config and an explicit default config agree.
        assert cache_key(SOURCE, "rap", 5, config=PipelineConfig()) == base

    def test_code_fingerprint_participates(self):
        # The compiler's own source is part of the key: a simulated
        # version bump (different fingerprint) changes every key.
        base = cache_key(SOURCE, "rap", 5)
        bumped = cache_key(SOURCE, "rap", 5, code_fingerprint="deadbeef")
        assert bumped != base
        # Deterministic for a fixed fingerprint.
        assert cache_key(SOURCE, "rap", 5, code_fingerprint="deadbeef") == bumped

    def test_key_components_track_their_inputs(self):
        base = key_components(SOURCE, "rap", 5)
        # Source churn moves only the source component.
        other = key_components(SOURCE + " ", "rap", 5)
        assert other["source"] != base["source"]
        assert other["params"] == base["params"]
        assert other["config"] == base["config"]
        # Parameter churn moves only params.
        other = key_components(SOURCE, "gra", 7, schedule=True)
        assert other["source"] == base["source"]
        assert other["params"] != base["params"]
        # Config churn moves only config.
        other = key_components(
            SOURCE, "rap", 5, config=PipelineConfig(verify_motion=False)
        )
        assert other["config"] != base["config"]
        assert other["source"] == base["source"]
        # Code churn moves only code.
        other = key_components(SOURCE, "rap", 5, code_fingerprint="deadbeef")
        assert other["code"] != base["code"]
        assert other["source"] == base["source"]


class TestSourceFingerprint:
    def test_stable_and_sensitive(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        (pkg / "sub").mkdir()
        (pkg / "sub" / "b.py").write_text("y = 2\n")
        first = source_fingerprint(str(pkg))
        assert first == source_fingerprint(str(pkg))  # deterministic
        (pkg / "a.py").write_text("x = 3\n")
        assert source_fingerprint(str(pkg)) != first  # content-sensitive
        (pkg / "a.py").write_text("x = 1\n")
        assert source_fingerprint(str(pkg)) == first  # restored == original

    def test_rename_changes_the_digest(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        first = source_fingerprint(str(pkg))
        os.rename(pkg / "a.py", pkg / "b.py")
        assert source_fingerprint(str(pkg)) != first

    def test_non_python_and_pycache_ignored(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        first = source_fingerprint(str(pkg))
        (pkg / "notes.txt").write_text("irrelevant")
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "a.cpython-311.pyc").write_bytes(b"\0\1")
        assert source_fingerprint(str(pkg)) == first

    def test_default_root_is_memoized(self):
        assert source_fingerprint() == source_fingerprint()
        assert len(source_fingerprint()) == 64  # sha256 hex

    def test_version_bump_misses_the_disk_tier(self, tmp_path):
        # The ROADMAP carried item, pinned: artifacts persisted by one
        # code version must not be served by another.  A bumped
        # fingerprint derives a different key, so the restarted "new
        # code" server finds the disk tier cold.
        cache = ArtifactCache(persist_dir=str(tmp_path))
        old_key = cache_key(SOURCE, "rap", 5, code_fingerprint="version-1")
        cache.put(old_key, _blob("v1"), {"n": 1})

        restarted = ArtifactCache(persist_dir=str(tmp_path))
        new_key = cache_key(SOURCE, "rap", 5, code_fingerprint="version-2")
        assert new_key != old_key
        assert restarted.get(new_key) is None  # cold: recompile
        # Same version still warm across the restart.
        same = restarted.get(
            cache_key(SOURCE, "rap", 5, code_fingerprint="version-1")
        )
        assert same is not None and same.blob == _blob("v1")
        assert restarted.disk_hits == 1


class TestLRUAccounting:
    def test_hit_miss_counters(self):
        cache = ArtifactCache(max_bytes=10_000)
        assert cache.get("absent") is None
        entry = cache.put("a", _blob("a"), {"n": 1})
        assert isinstance(entry, CacheEntry)
        got = cache.get("a")
        assert got is not None and got.blob == _blob("a")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] == entry.size

    def test_eviction_is_least_recently_used(self):
        # shards=1 pins the historical single-LRU-domain semantics this
        # test is about; multi-shard behavior is covered separately.
        entry_size = CacheEntry("x", _blob("x", 100), {}).size
        cache = ArtifactCache(max_bytes=3 * entry_size, shards=1)
        for tag in ("a", "b", "c"):
            cache.put(tag, _blob(tag, 100), {})
        cache.get("a")  # refresh a: b is now the coldest
        cache.put("d", _blob("d", 100), {})
        assert cache.get("b") is None  # evicted
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.get("d") is not None
        assert cache.evictions == 1
        assert cache.total_bytes <= cache.max_bytes

    def test_replacing_a_key_does_not_leak_bytes(self):
        cache = ArtifactCache(max_bytes=10_000)
        cache.put("a", _blob("a", 100), {})
        cache.put("a", _blob("a", 200), {})
        assert cache.stats()["entries"] == 1
        assert cache.total_bytes == CacheEntry("a", _blob("a", 200), {}).size

    def test_oversized_entry_not_held_in_memory(self):
        cache = ArtifactCache(max_bytes=50, shards=1)
        cache.put("big", _blob("big", 500), {})
        assert len(cache) == 0
        assert cache.total_bytes == 0


class TestDiskTier:
    def test_persist_and_reload_across_instances(self, tmp_path):
        first = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path))
        first.put("k1", _blob("k1"), {"output": [3]})
        second = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path))
        entry = second.get("k1")
        assert entry is not None
        assert entry.blob == _blob("k1")
        assert entry.meta == {"output": [3]}
        stats = second.stats()
        assert stats["hits"] == 1 and stats["disk_hits"] == 1
        # Promoted into memory: the next get is a pure memory hit.
        assert second.get("k1") is not None
        assert second.stats()["disk_hits"] == 1

    def test_memory_eviction_keeps_the_disk_copy(self, tmp_path):
        entry_size = CacheEntry("x", _blob("x", 100), {}).size
        cache = ArtifactCache(
            max_bytes=2 * entry_size, persist_dir=str(tmp_path), shards=1
        )
        for tag in ("a", "b", "c"):
            cache.put(tag, _blob(tag, 100), {})
        assert cache.evictions >= 1
        assert cache.get("a") is not None  # back from disk
        assert cache.disk_hits == 1

    def test_older_format_version_is_cold(self, tmp_path):
        cache = ArtifactCache(persist_dir=str(tmp_path))
        stale = json.dumps({"version": FORMAT_VERSION - 1, "tag": "old"})
        with open(os.path.join(str(tmp_path), "k2.json"), "w") as handle:
            json.dump({"meta": {}, "image": stale}, handle)
        assert cache.get("k2") is None
        assert cache.stats()["misses"] == 1

    def test_corrupt_file_is_a_miss_not_a_crash(self, tmp_path):
        cache = ArtifactCache(persist_dir=str(tmp_path))
        with open(os.path.join(str(tmp_path), "k3.json"), "w") as handle:
            handle.write("{nope")
        assert cache.get("k3") is None

    def test_disk_tier_shared_across_shard_counts(self, tmp_path):
        # The disk directory is one flat namespace; a cache restarted
        # with a different shard count still finds every artifact.
        writer = ArtifactCache(
            max_bytes=10_000, persist_dir=str(tmp_path), shards=8
        )
        keys = [cache_key(f"prog {i}", "rap", 5) for i in range(12)]
        for i, key in enumerate(keys):
            writer.put(key, _blob(f"p{i}"), {"i": i})
        reader = ArtifactCache(
            max_bytes=10_000, persist_dir=str(tmp_path), shards=3
        )
        for i, key in enumerate(keys):
            entry = reader.get(key)
            assert entry is not None and entry.blob == _blob(f"p{i}")


def _hexkey(tag: str) -> str:
    """A real-shaped cache key (64 hex chars) — the startup scrub only
    judges files inside that namespace."""
    return hashlib.sha256(tag.encode()).hexdigest()


class TestIntegrity:
    """Checksummed disk tier: a damaged file must read as a classified
    ``corrupt`` miss — never ``unclassified``, never a crash — and the
    startup scrub must find and delete it."""

    @staticmethod
    def _flip_one_byte(path: str, offset: int = -10) -> None:
        with open(path, "r+b") as handle:
            handle.seek(offset, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0x01]))

    def test_bit_flip_reads_as_corrupt_miss(self, tmp_path):
        cache = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path), shards=1)
        cache.put(_hexkey("k1"), _blob(_hexkey("k1")), {"output": [1]})
        self._flip_one_byte(os.path.join(str(tmp_path), _hexkey("k1") + ".json"))
        reloaded = ArtifactCache(
            max_bytes=10_000, persist_dir=str(tmp_path), shards=1
        )
        # The startup scrub already classified and deleted the file...
        assert reloaded.stats()["scrub"] == {
            "scanned": 1, "ok": 0, "stale": 0, "corrupt": 1,
        }
        assert not os.path.exists(os.path.join(str(tmp_path), _hexkey("k1") + ".json"))
        # ...and a direct read is an ordinary (absent) miss, not a crash.
        assert reloaded.get(_hexkey("k1")) is None

    def test_bit_flip_without_scrub_is_classified_corrupt(self, tmp_path):
        cache = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path), shards=1)
        path = os.path.join(str(tmp_path), _hexkey("k1") + ".json")
        cache.put(_hexkey("k1"), _blob(_hexkey("k1")), {"output": [1]})
        # Evict the memory copy so the read must go to disk.
        cache = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path), shards=1)
        self._flip_one_byte(path)
        assert cache.get(_hexkey("k1")) is None
        stats = cache.stats()
        assert stats["miss_kinds"]["corrupt"] == 1
        assert stats["miss_kinds"]["unclassified"] == 0
        assert stats["corrupt"] == 1

    def test_truncated_file_is_corrupt(self, tmp_path):
        cache = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path), shards=1)
        path = os.path.join(str(tmp_path), _hexkey("k1") + ".json")
        cache.put(_hexkey("k1"), _blob(_hexkey("k1")), {"output": [1]})
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        cache = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path), shards=1)
        # Scrub deleted the torn file; nothing is served from it.
        assert cache.stats()["scrub"]["corrupt"] == 1
        assert cache.get(_hexkey("k1")) is None

    def test_scrub_tallies_ok_stale_and_corrupt(self, tmp_path):
        writer = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path))
        writer.put(_hexkey("good"), _blob(_hexkey("good")), {})
        stale = json.dumps({"version": FORMAT_VERSION - 1})
        with open(os.path.join(str(tmp_path), _hexkey("old") + ".json"), "w") as handle:
            json.dump({"meta": {}, "image": stale}, handle)
        with open(os.path.join(str(tmp_path), _hexkey("torn") + ".json"), "w") as handle:
            handle.write("{nope")
        scrubbed = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path))
        assert scrubbed.stats()["scrub"] == {
            "scanned": 3, "ok": 1, "stale": 1, "corrupt": 1,
        }
        # Corrupt deleted, stale left for format-upgrade forensics,
        # good still served.
        assert not os.path.exists(os.path.join(str(tmp_path), _hexkey("torn") + ".json"))
        assert os.path.exists(os.path.join(str(tmp_path), _hexkey("old") + ".json"))
        assert scrubbed.get(_hexkey("good")) is not None

    def test_legacy_unchecksummed_file_reads_as_stale(self, tmp_path):
        # Pre-checksum files (no sha256 header) are stale, not corrupt:
        # they were written by an older tier, not damaged in place.
        cache = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path), shards=1)
        body = json.dumps({"version": FORMAT_VERSION, "tag": "legacy"})
        with open(
            os.path.join(str(tmp_path), _hexkey("k9") + ".json"), "w"
        ) as handle:
            json.dump({"meta": {}, "image": body}, handle)
        assert cache.get(_hexkey("k9")) is None
        assert cache.stats()["miss_kinds"]["corrupt"] == 0

    def test_memory_tier_unaffected_by_disk_damage(self, tmp_path):
        cache = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path), shards=1)
        cache.put(_hexkey("k1"), _blob(_hexkey("k1")), {"output": [1]})
        self._flip_one_byte(os.path.join(str(tmp_path), _hexkey("k1") + ".json"))
        # Memory copy still valid: damage on disk must not poison it.
        entry = cache.get(_hexkey("k1"))
        assert entry is not None and entry.blob == _blob(_hexkey("k1"))


class TestSharding:
    def test_routing_is_deterministic_and_in_range(self):
        cache = ArtifactCache(max_bytes=10_000, shards=8)
        keys = [cache_key(f"prog {i}", "rap", 5) for i in range(50)]
        for key in keys:
            idx = cache.shard_of(key)
            assert 0 <= idx < 8
            assert cache.shard_of(key) == idx  # pure function
        # Real sha256 keys spread over more than one shard.
        assert len({cache.shard_of(key) for key in keys}) > 1

    def test_non_hex_keys_route_without_error(self):
        cache = ArtifactCache(max_bytes=10_000, shards=8)
        for key in ("a", "k1", "t0.r0", "absent", ""):
            assert 0 <= cache.shard_of(key) < 8
        cache.put("a", _blob("a"), {})
        assert cache.get("a") is not None

    def test_budget_divides_across_shards(self):
        cache = ArtifactCache(max_bytes=8_000, shards=8)
        assert all(
            snap["max_bytes"] == 1_000 for snap in cache.stats()["shards"]
        )
        assert cache.stats()["shard_count"] == 8

    def test_shards_must_be_positive(self):
        try:
            ArtifactCache(shards=0)
        except ValueError:
            pass
        else:  # pragma: no cover - only on failure
            raise AssertionError("shards=0 accepted")

    def test_keys_spans_all_shards(self):
        cache = ArtifactCache(max_bytes=1_000_000, shards=4)
        keys = {cache_key(f"prog {i}", "rap", 5) for i in range(20)}
        for key in keys:
            cache.put(key, _blob(key[:8]), {})
        assert set(cache.keys()) == keys
        assert len(cache) == len(keys)


class TestMissKinds:
    """Satellite: the stats op attributes misses to the key component
    that changed — source vs config vs code churn."""

    @staticmethod
    def _lookup(cache, source, **kwargs):
        key = cache_key(source, "rap", 5, **kwargs)
        comps = key_components(source, "rap", 5, **kwargs)
        entry = cache.get(key, components=comps)
        if entry is None:
            cache.put(key, _blob(key[:8]), {}, components=comps)
        return entry

    def test_source_churn_is_a_source_miss(self):
        cache = ArtifactCache(max_bytes=10_000)
        self._lookup(cache, "void main() { print(1); }")
        self._lookup(cache, "void main() { print(2); }")
        assert cache.miss_kinds() == {
            "source": 2, "config": 0, "code": 0, "corrupt": 0,
            "unclassified": 0,
        }

    def test_code_churn_is_a_code_miss(self):
        cache = ArtifactCache(max_bytes=10_000)
        self._lookup(cache, SOURCE, code_fingerprint="v1")
        self._lookup(cache, SOURCE, code_fingerprint="v2")  # deploy
        kinds = cache.miss_kinds()
        assert kinds["code"] == 1 and kinds["source"] == 1
        # Warm again under the new fingerprint.
        assert self._lookup(cache, SOURCE, code_fingerprint="v2") is not None

    def test_config_churn_is_a_config_miss(self):
        cache = ArtifactCache(max_bytes=10_000)
        self._lookup(cache, SOURCE, config=PipelineConfig())
        self._lookup(
            cache, SOURCE, config=PipelineConfig(verify_motion=False)
        )
        kinds = cache.miss_kinds()
        assert kinds["config"] == 1 and kinds["source"] == 1

    def test_component_free_lookups_are_unclassified(self):
        cache = ArtifactCache(max_bytes=10_000)
        assert cache.get("absent") is None
        assert cache.miss_kinds()["unclassified"] == 1

    def test_hits_do_not_count(self):
        cache = ArtifactCache(max_bytes=10_000)
        self._lookup(cache, SOURCE)
        assert self._lookup(cache, SOURCE) is not None
        kinds = cache.miss_kinds()
        assert sum(kinds.values()) == 1
        assert cache.stats()["miss_kinds"] == kinds


class TestConcurrency:
    """Satellite: hammer the cache from 8 threads; no torn reads, exact
    per-shard byte accounting, counter conservation across shards."""

    THREADS = 8
    ROUNDS = 60

    def test_eight_thread_hammer(self):
        entry_size = CacheEntry("t0.r0", _blob("t0.r0", 200), {"t": 0}).size
        # Budget for ~half the distinct keys, so eviction runs hot
        # concurrently with lookups and insertions.
        cache = ArtifactCache(
            max_bytes=(self.THREADS * self.ROUNDS // 2) * entry_size
        )
        errors = []
        barrier = threading.Barrier(self.THREADS)

        def hammer(tid: int) -> None:
            try:
                barrier.wait()
                for round_ in range(self.ROUNDS):
                    key = f"t{tid}.r{round_}"
                    blob = _blob(key, 200)
                    cache.put(key, blob, {"t": tid})
                    # Read back own key plus a neighbour's stream.
                    for probe in (key, f"t{(tid + 1) % self.THREADS}.r{round_}"):
                        entry = cache.get(probe)
                        if entry is not None:
                            if entry.blob != _blob(probe, 200):
                                errors.append(f"torn read on {probe}")
                            if entry.meta["t"] != int(probe[1:].split(".")[0]):
                                errors.append(f"wrong meta on {probe}")
            except Exception as err:  # pragma: no cover - only on failure
                errors.append(repr(err))

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        stats = cache.stats()
        # Counter conservation: every get was exactly a hit or a miss,
        # and the aggregate equals the sum over shards.
        gets = 2 * self.THREADS * self.ROUNDS
        assert stats["hits"] + stats["misses"] == gets
        assert stats["hits"] > 0 and stats["misses"] > 0
        assert sum(s["hits"] for s in stats["shards"]) == stats["hits"]
        assert sum(s["misses"] for s in stats["shards"]) == stats["misses"]
        assert sum(s["bytes"] for s in stats["shards"]) == stats["bytes"]
        # Byte accounting is exact: the tracked total equals the sum of
        # the live entries' sizes (entry size is a pure function of the
        # key here), and every shard respects its own budget.
        live = sum(
            CacheEntry(key, _blob(key, 200), {"t": 0}).size
            for key in cache.keys()
        )
        assert cache.total_bytes == live
        for snap in stats["shards"]:
            assert snap["bytes"] <= snap["max_bytes"]
        assert stats["evictions"] > 0
        # Deterministic responses: a surviving key still returns its
        # exact original bytes.
        for key in cache.keys():
            entry = cache.get(key)
            if entry is not None:  # may race with nothing here, but be safe
                assert entry.blob == _blob(key, 200)
