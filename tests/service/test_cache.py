"""The content-addressed artifact cache: keys, LRU accounting, disk tier,
and the 8-thread concurrency hammer."""

import json
import os
import threading

from repro.interp.serialize import FORMAT_VERSION
from repro.resilience.pipeline import PipelineConfig
from repro.service.cache import (
    ArtifactCache,
    CacheEntry,
    cache_key,
    source_fingerprint,
)

SOURCE = "void main() { print(1); }"


def _blob(tag: str, size: int = 64) -> bytes:
    """A fake canonical payload of a controlled size."""
    body = {"version": FORMAT_VERSION, "tag": tag}
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return (text + " " * max(0, size - len(text))).encode()


class TestCacheKey:
    def test_every_input_perturbs_the_key(self):
        base = cache_key(SOURCE, "rap", 5)
        assert cache_key(SOURCE, "rap", 5) == base  # deterministic
        assert cache_key(SOURCE + " ", "rap", 5) != base
        assert cache_key(SOURCE, "gra", 5) != base
        assert cache_key(SOURCE, "rap", 7) != base
        assert cache_key(SOURCE, "rap", 5, schedule=True) != base

    def test_pipeline_config_participates(self):
        base = cache_key(SOURCE, "rap", 5)
        loose = cache_key(
            SOURCE, "rap", 5, config=PipelineConfig(verify_motion=False)
        )
        merged = cache_key(
            SOURCE, "rap", 5, config=PipelineConfig(granularity="merged")
        )
        assert len({base, loose, merged}) == 3
        # The default config and an explicit default config agree.
        assert cache_key(SOURCE, "rap", 5, config=PipelineConfig()) == base

    def test_code_fingerprint_participates(self):
        # The compiler's own source is part of the key: a simulated
        # version bump (different fingerprint) changes every key.
        base = cache_key(SOURCE, "rap", 5)
        bumped = cache_key(SOURCE, "rap", 5, code_fingerprint="deadbeef")
        assert bumped != base
        # Deterministic for a fixed fingerprint.
        assert cache_key(SOURCE, "rap", 5, code_fingerprint="deadbeef") == bumped


class TestSourceFingerprint:
    def test_stable_and_sensitive(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        (pkg / "sub").mkdir()
        (pkg / "sub" / "b.py").write_text("y = 2\n")
        first = source_fingerprint(str(pkg))
        assert first == source_fingerprint(str(pkg))  # deterministic
        (pkg / "a.py").write_text("x = 3\n")
        assert source_fingerprint(str(pkg)) != first  # content-sensitive
        (pkg / "a.py").write_text("x = 1\n")
        assert source_fingerprint(str(pkg)) == first  # restored == original

    def test_rename_changes_the_digest(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        first = source_fingerprint(str(pkg))
        os.rename(pkg / "a.py", pkg / "b.py")
        assert source_fingerprint(str(pkg)) != first

    def test_non_python_and_pycache_ignored(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        first = source_fingerprint(str(pkg))
        (pkg / "notes.txt").write_text("irrelevant")
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "a.cpython-311.pyc").write_bytes(b"\0\1")
        assert source_fingerprint(str(pkg)) == first

    def test_default_root_is_memoized(self):
        assert source_fingerprint() == source_fingerprint()
        assert len(source_fingerprint()) == 64  # sha256 hex

    def test_version_bump_misses_the_disk_tier(self, tmp_path):
        # The ROADMAP carried item, pinned: artifacts persisted by one
        # code version must not be served by another.  A bumped
        # fingerprint derives a different key, so the restarted "new
        # code" server finds the disk tier cold.
        cache = ArtifactCache(persist_dir=str(tmp_path))
        old_key = cache_key(SOURCE, "rap", 5, code_fingerprint="version-1")
        cache.put(old_key, _blob("v1"), {"n": 1})

        restarted = ArtifactCache(persist_dir=str(tmp_path))
        new_key = cache_key(SOURCE, "rap", 5, code_fingerprint="version-2")
        assert new_key != old_key
        assert restarted.get(new_key) is None  # cold: recompile
        # Same version still warm across the restart.
        same = restarted.get(
            cache_key(SOURCE, "rap", 5, code_fingerprint="version-1")
        )
        assert same is not None and same.blob == _blob("v1")
        assert restarted.disk_hits == 1


class TestLRUAccounting:
    def test_hit_miss_counters(self):
        cache = ArtifactCache(max_bytes=10_000)
        assert cache.get("absent") is None
        entry = cache.put("a", _blob("a"), {"n": 1})
        assert isinstance(entry, CacheEntry)
        got = cache.get("a")
        assert got is not None and got.blob == _blob("a")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] == entry.size

    def test_eviction_is_least_recently_used(self):
        entry_size = CacheEntry("x", _blob("x", 100), {}).size
        cache = ArtifactCache(max_bytes=3 * entry_size)
        for tag in ("a", "b", "c"):
            cache.put(tag, _blob(tag, 100), {})
        cache.get("a")  # refresh a: b is now the coldest
        cache.put("d", _blob("d", 100), {})
        assert cache.get("b") is None  # evicted
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.get("d") is not None
        assert cache.evictions == 1
        assert cache.total_bytes <= cache.max_bytes

    def test_replacing_a_key_does_not_leak_bytes(self):
        cache = ArtifactCache(max_bytes=10_000)
        cache.put("a", _blob("a", 100), {})
        cache.put("a", _blob("a", 200), {})
        assert cache.stats()["entries"] == 1
        assert cache.total_bytes == CacheEntry("a", _blob("a", 200), {}).size

    def test_oversized_entry_not_held_in_memory(self):
        cache = ArtifactCache(max_bytes=50)
        cache.put("big", _blob("big", 500), {})
        assert len(cache) == 0
        assert cache.total_bytes == 0


class TestDiskTier:
    def test_persist_and_reload_across_instances(self, tmp_path):
        first = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path))
        first.put("k1", _blob("k1"), {"output": [3]})
        second = ArtifactCache(max_bytes=10_000, persist_dir=str(tmp_path))
        entry = second.get("k1")
        assert entry is not None
        assert entry.blob == _blob("k1")
        assert entry.meta == {"output": [3]}
        stats = second.stats()
        assert stats["hits"] == 1 and stats["disk_hits"] == 1
        # Promoted into memory: the next get is a pure memory hit.
        assert second.get("k1") is not None
        assert second.stats()["disk_hits"] == 1

    def test_memory_eviction_keeps_the_disk_copy(self, tmp_path):
        entry_size = CacheEntry("x", _blob("x", 100), {}).size
        cache = ArtifactCache(
            max_bytes=2 * entry_size, persist_dir=str(tmp_path)
        )
        for tag in ("a", "b", "c"):
            cache.put(tag, _blob(tag, 100), {})
        assert cache.evictions >= 1
        assert cache.get("a") is not None  # back from disk
        assert cache.disk_hits == 1

    def test_older_format_version_is_cold(self, tmp_path):
        cache = ArtifactCache(persist_dir=str(tmp_path))
        stale = json.dumps({"version": FORMAT_VERSION - 1, "tag": "old"})
        with open(os.path.join(str(tmp_path), "k2.json"), "w") as handle:
            json.dump({"meta": {}, "image": stale}, handle)
        assert cache.get("k2") is None
        assert cache.stats()["misses"] == 1

    def test_corrupt_file_is_a_miss_not_a_crash(self, tmp_path):
        cache = ArtifactCache(persist_dir=str(tmp_path))
        with open(os.path.join(str(tmp_path), "k3.json"), "w") as handle:
            handle.write("{nope")
        assert cache.get("k3") is None


class TestConcurrency:
    """Satellite: hammer the cache from 8 threads; no torn reads, exact
    LRU byte accounting, deterministic responses."""

    THREADS = 8
    ROUNDS = 60

    def test_eight_thread_hammer(self):
        entry_size = CacheEntry("t0.r0", _blob("t0.r0", 200), {"t": 0}).size
        # Budget for ~half the distinct keys, so eviction runs hot
        # concurrently with lookups and insertions.
        cache = ArtifactCache(max_bytes=(self.THREADS * self.ROUNDS // 2) * entry_size)
        errors = []
        barrier = threading.Barrier(self.THREADS)

        def hammer(tid: int) -> None:
            try:
                barrier.wait()
                for round_ in range(self.ROUNDS):
                    key = f"t{tid}.r{round_}"
                    blob = _blob(key, 200)
                    cache.put(key, blob, {"t": tid})
                    # Read back own key plus a neighbour's stream.
                    for probe in (key, f"t{(tid + 1) % self.THREADS}.r{round_}"):
                        entry = cache.get(probe)
                        if entry is not None:
                            if entry.blob != _blob(probe, 200):
                                errors.append(f"torn read on {probe}")
                            if entry.meta["t"] != int(probe[1:].split(".")[0]):
                                errors.append(f"wrong meta on {probe}")
            except Exception as err:  # pragma: no cover - only on failure
                errors.append(repr(err))

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        stats = cache.stats()
        # Counter conservation: every get was exactly a hit or a miss.
        gets = 2 * self.THREADS * self.ROUNDS
        assert stats["hits"] + stats["misses"] == gets
        assert stats["hits"] > 0 and stats["misses"] > 0
        # Byte accounting is exact: the tracked total equals the sum of
        # the live entries' sizes, and respects the budget.
        live = sum(
            cache._entries[key].size for key in list(cache._entries)
        )
        assert cache.total_bytes == live
        assert cache.total_bytes <= cache.max_bytes
        assert stats["evictions"] > 0
        # Deterministic responses: a surviving key still returns its
        # exact original bytes.
        for key in list(cache._entries):
            assert cache.get(key).blob == _blob(key, 200)
