"""Client-side robustness: typed protocol errors (no raw socket/JSON
exceptions escape), retry with backoff on transient failures, and
connection-establishment retry."""

import json
import socket
import threading

import pytest

from repro.service.client import (
    RETRYABLE_KINDS,
    ServiceClient,
    ServiceError,
    connect_with_retry,
)


class ScriptedServer:
    """A one-connection-at-a-time TCP server that answers each request
    line with the next scripted behavior:

    * a dict — sent as a JSON response line;
    * ``"garbage"`` — an unparseable response line;
    * ``"close"`` — close the connection without answering;
    * ``"silent"`` — never answer (the client's socket timeout fires).
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        index = 0
        while index < len(self.script):
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            file = conn.makefile("rwb")
            try:
                while index < len(self.script):
                    line = file.readline()
                    if not line:
                        break  # client reconnected or gave up
                    self.requests.append(json.loads(line))
                    action = self.script[index]
                    index += 1
                    if action == "close":
                        break
                    if action == "silent":
                        continue
                    if action == "garbage":
                        file.write(b"} this is not json {\n")
                    else:
                        file.write(
                            json.dumps(action).encode("utf-8") + b"\n"
                        )
                    file.flush()
            finally:
                # Close the makefile handle too: it holds its own
                # reference to the socket, and leaving it open would
                # keep the connection alive (the client would never
                # see EOF on the "close" action).
                try:
                    file.close()
                except OSError:
                    pass
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                conn.close()

    def close(self):
        self._listener.close()


OK = {"ok": True, "op": "ping"}


def error_response(kind, message="boom"):
    return {
        "ok": False,
        "error": {
            "kind": kind,
            "message": message,
            "context": {"stage": kind},
            "cause": None,
        },
    }


class TestTypedProtocolErrors:
    def test_garbled_response_is_a_protocol_error(self):
        # Regression: this used to escape as a raw json.JSONDecodeError.
        server = ScriptedServer(["garbage"])
        try:
            with ServiceClient("127.0.0.1", server.port) as client:
                with pytest.raises(ServiceError) as info:
                    client.checked({"op": "ping"})
            assert info.value.kind == "protocol"
            assert not info.value.retryable
        finally:
            server.close()

    def test_closed_connection_is_a_transport_error(self):
        server = ScriptedServer(["close"])
        try:
            with ServiceClient("127.0.0.1", server.port) as client:
                with pytest.raises(ServiceError) as info:
                    client.checked({"op": "ping"})
            assert info.value.kind == "transport"
            assert info.value.retryable
        finally:
            server.close()

    def test_socket_timeout_is_a_timeout_error(self):
        server = ScriptedServer(["silent", OK])
        try:
            with ServiceClient(
                "127.0.0.1", server.port, timeout=0.2
            ) as client:
                with pytest.raises(ServiceError) as info:
                    client.checked({"op": "ping"})
            assert info.value.kind == "timeout"
            assert info.value.retryable
        finally:
            server.close()

    def test_closed_client_raises_typed_not_attribute_error(self):
        server = ScriptedServer([OK])
        try:
            client = ServiceClient("127.0.0.1", server.port)
            client.close()
            with pytest.raises(ServiceError) as info:
                client.request({"op": "ping"})
            assert info.value.kind == "transport"
        finally:
            server.close()


class TestRetry:
    def test_retries_admission_then_succeeds(self):
        server = ScriptedServer(
            [error_response("admission", "queue full"), OK]
        )
        try:
            with ServiceClient(
                "127.0.0.1", server.port, retries=3, backoff=0.01
            ) as client:
                response = client.checked({"op": "ping"})
            assert response["ok"]
            assert len(server.requests) == 2  # original + one retry
        finally:
            server.close()

    def test_retries_worker_crash(self):
        server = ScriptedServer(
            [
                error_response("worker-crash", "worker died"),
                error_response("worker-crash", "worker died again"),
                OK,
            ]
        )
        try:
            with ServiceClient(
                "127.0.0.1", server.port, retries=3, backoff=0.01
            ) as client:
                assert client.checked({"op": "ping"})["ok"]
            assert len(server.requests) == 3
        finally:
            server.close()

    def test_reconnects_and_retries_after_transport_failure(self):
        server = ScriptedServer(["close", OK])
        try:
            with ServiceClient(
                "127.0.0.1", server.port, retries=3, backoff=0.01
            ) as client:
                assert client.checked({"op": "ping"})["ok"]
            assert len(server.requests) == 2
        finally:
            server.close()

    def test_non_retryable_kinds_fail_fast(self):
        for kind in ("deadline", "request", "worker-timeout", "poison-pill"):
            assert kind not in RETRYABLE_KINDS
            server = ScriptedServer([error_response(kind), OK])
            try:
                with ServiceClient(
                    "127.0.0.1", server.port, retries=3, backoff=0.01
                ) as client:
                    with pytest.raises(ServiceError) as info:
                        client.checked({"op": "ping"})
                assert info.value.kind == kind
                assert len(server.requests) == 1  # no retry happened
            finally:
                server.close()

    def test_retries_exhausted_raises_the_last_error(self):
        server = ScriptedServer(
            [error_response("admission")] * 3
        )
        try:
            with ServiceClient(
                "127.0.0.1", server.port, retries=2, backoff=0.01
            ) as client:
                with pytest.raises(ServiceError) as info:
                    client.checked({"op": "ping"})
            assert info.value.kind == "admission"
            assert len(server.requests) == 3  # original + 2 retries
        finally:
            server.close()

    def test_zero_retries_keeps_fail_fast_default(self):
        server = ScriptedServer([error_response("admission"), OK])
        try:
            with ServiceClient("127.0.0.1", server.port) as client:
                with pytest.raises(ServiceError):
                    client.checked({"op": "ping"})
            assert len(server.requests) == 1
        finally:
            server.close()


class TestConnectWithRetry:
    def test_connects_once_the_port_is_live(self):
        # Reserve a port, start listening only after a short delay —
        # the pattern of a client racing a daemon's startup.
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        holder = {}

        def start_late():
            import time

            time.sleep(0.15)
            holder["server"] = ScriptedServer.__new__(ScriptedServer)
            server = holder["server"]
            server.script = [OK]
            server.requests = []
            server._listener = socket.create_server(("127.0.0.1", port))
            server.port = port
            server._thread = threading.Thread(
                target=server._serve, daemon=True
            )
            server._thread.start()

        threading.Thread(target=start_late, daemon=True).start()
        with connect_with_retry(
            "127.0.0.1", port, retries=8, backoff=0.05
        ) as client:
            assert client.checked({"op": "ping"})["ok"]
        holder["server"].close()

    def test_gives_up_with_a_typed_error(self):
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing will ever listen here
        with pytest.raises(ServiceError) as info:
            connect_with_retry("127.0.0.1", port, retries=1, backoff=0.01)
        assert info.value.kind == "transport"
