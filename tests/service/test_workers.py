"""The supervised process worker tier: crash isolation, the per-job
watchdog, respawn backoff, the restart-storm circuit breaker, poison-pill
quarantine, zombie-free drain, and no-orphans-after-SIGKILL."""

import multiprocessing
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.resilience.errors import StageError
from repro.service.server import CompileService
from repro.service.workers import Supervision

TRIVIAL = "void main() { print(7); }"

SIEVE_LIKE = """
void main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 25; i = i + 1) { s = s + i * i; }
    print(s);
}
"""


def compile_request(source=TRIVIAL, **overrides):
    request = {"op": "compile", "source": source, "allocator": "rap", "k": 5}
    request.update(overrides)
    return request


def make_service(**overrides):
    kwargs = dict(
        workers=1,
        worker_mode="process",
        chaos_enabled=True,
        supervision=Supervision(
            job_timeout_s=2.0,
            backoff_base_s=0.01,
            backoff_cap_s=0.1,
            storm_threshold=3,
            storm_window_s=1.0,
            poison_threshold=2,
        ),
    )
    kwargs.update(overrides)
    service = CompileService(**kwargs)
    service.start()
    return service


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestProcessColdAndWarm:
    def test_cold_compile_crosses_the_process_boundary(self):
        service = make_service()
        try:
            cold = service.submit(compile_request(SIEVE_LIKE))
            assert cold["ok"] and cold["cache"] == "miss"
            assert "parse" in cold["stages_run"]
            assert cold["output"]  # executed in the child, shipped back
            # Stage telemetry merged parent-side from the child's run.
            assert service.metrics.stages["allocate"].calls >= 1
        finally:
            service.drain(timeout=5.0)

    def test_warm_hit_is_answered_parent_side(self):
        service = make_service()
        try:
            cold = service.submit(compile_request(SIEVE_LIKE))
            jobs_before = service._supervisor.stats()["workers"][0]["jobs_done"]
            warm = service.submit(compile_request(SIEVE_LIKE))
            assert warm["cache"] == "hit"
            assert warm["stages_run"] == []
            assert warm["image_sha256"] == cold["image_sha256"]
            # The hit never reached the child process.
            jobs_after = service._supervisor.stats()["workers"][0]["jobs_done"]
            assert jobs_after == jobs_before
        finally:
            service.drain(timeout=5.0)

    def test_thread_and_process_tiers_agree_byte_for_byte(self):
        proc = make_service()
        threaded = CompileService(workers=1, worker_mode="thread")
        threaded.start()
        try:
            a = proc.submit(compile_request(SIEVE_LIKE, k=6))
            b = threaded.submit(compile_request(SIEVE_LIKE, k=6))
            assert a["ok"] and b["ok"]
            assert a["image_sha256"] == b["image_sha256"]
            assert a["output"] == b["output"]
            assert a["key"] == b["key"]
        finally:
            proc.drain(timeout=5.0)
            threaded.drain(timeout=5.0)

    def test_stage_error_thaws_across_the_pipe(self):
        service = make_service()
        try:
            response = service.submit(
                compile_request("void main() { int ; }")
            )
            assert not response["ok"]
            error = StageError.thaw(response["error"])
            assert error.stage == "parse"
        finally:
            service.drain(timeout=5.0)

    def test_malformed_requests_answered_without_a_worker(self):
        service = make_service()
        try:
            assert not service.submit({"op": "nope"})["ok"]
            response = service.submit(compile_request(allocator="wat"))
            assert not response["ok"]
            assert "wat" in response["error"]["message"]
        finally:
            service.drain(timeout=5.0)


class TestCrashIsolation:
    def test_crash_is_answered_typed_and_worker_respawns(self):
        service = make_service()
        try:
            crashed = service.submit(
                compile_request(TRIVIAL + "// crash", chaos="crash")
            )
            assert not crashed["ok"]
            assert crashed["error"]["kind"] == "worker-crash"
            assert "exit" in crashed["error"]["message"]
            # The daemon survived and the respawned child still compiles.
            after = service.submit(compile_request(SIEVE_LIKE))
            assert after["ok"]
            sup = service._supervisor.stats()
            assert sup["crashes"] == 1
            assert sup["restarts"] >= 1
        finally:
            service.drain(timeout=5.0)

    def test_chaos_directive_ignored_when_not_enabled(self):
        service = make_service(chaos_enabled=False)
        try:
            response = service.submit(
                compile_request(TRIVIAL, chaos="crash")
            )
            assert response["ok"]  # compiled normally; probe inert
            assert service._supervisor.stats()["crashes"] == 0
        finally:
            service.drain(timeout=5.0)

    def test_hang_is_killed_by_the_watchdog_within_budget(self):
        service = make_service()
        try:
            started = time.monotonic()
            hung = service.submit(
                compile_request(TRIVIAL + "// hang", chaos="hang")
            )
            elapsed = time.monotonic() - started
            assert not hung["ok"]
            assert hung["error"]["kind"] == "worker-timeout"
            # Watchdog (2s) + kill/respawn slack — nowhere near the
            # client's socket timeout.
            assert elapsed < 2.0 + 3.0
            assert service._supervisor.stats()["watchdog_fires"] == 1
            # Service still alive afterwards.
            assert service.submit(compile_request(SIEVE_LIKE))["ok"]
        finally:
            service.drain(timeout=5.0)


class TestPoisonPill:
    def test_striking_key_is_quarantined(self):
        service = make_service()
        try:
            probe = compile_request(TRIVIAL + "// poison", chaos="crash")
            for _ in range(2):  # poison_threshold strikes
                response = service.submit(probe)
                assert response["error"]["kind"] == "worker-crash"
            crashes_before = service._supervisor.stats()["crashes"]
            quarantined = service.submit(probe)
            assert quarantined["error"]["kind"] == "poison-pill"
            assert "quarantined" in quarantined["error"]["message"]
            # Answered pre-dispatch: no worker died for it.
            assert service._supervisor.stats()["crashes"] == crashes_before
            stats = service.submit({"op": "stats"})
            assert len(stats["quarantined"]) == 1
            # Other keys are unaffected.
            assert service.submit(compile_request(SIEVE_LIKE))["ok"]
        finally:
            service.drain(timeout=5.0)

    def test_quarantine_survives_restart(self, tmp_path):
        from repro.service.cache import ArtifactCache

        probe = compile_request(TRIVIAL + "// persisted poison", chaos="crash")
        service = make_service(
            cache=ArtifactCache(persist_dir=str(tmp_path))
        )
        try:
            for _ in range(2):  # poison_threshold strikes
                assert service.submit(probe)["error"]["kind"] == "worker-crash"
            assert service.submit(probe)["error"]["kind"] == "poison-pill"
        finally:
            service.drain(timeout=5.0)
        assert os.path.exists(os.path.join(str(tmp_path), "quarantine.json"))

        # A fresh process over the same persist_dir must refuse the key
        # up front — no re-striking, no worker sacrificed to relearn it.
        reborn = make_service(cache=ArtifactCache(persist_dir=str(tmp_path)))
        try:
            crashes_before = reborn._supervisor.stats()["crashes"]
            refused = reborn.submit(probe)
            assert refused["error"]["kind"] == "poison-pill"
            assert reborn._supervisor.stats()["crashes"] == crashes_before
            stats = reborn.submit({"op": "stats"})
            assert len(stats["quarantined"]) == 1
            # Healthy keys still compile after the reload.
            assert reborn.submit(compile_request(SIEVE_LIKE))["ok"]
        finally:
            reborn.drain(timeout=5.0)


class TestRestartStorm:
    def test_storm_degrades_demotes_and_recovers(self):
        service = make_service(
            supervision=Supervision(
                job_timeout_s=2.0,
                backoff_base_s=0.01,
                backoff_cap_s=0.05,
                storm_threshold=2,
                storm_window_s=1.5,
                poison_threshold=10,  # keep quarantine out of this test
            )
        )
        try:
            # Two distinct crashing keys inside the window trip the
            # breaker without quarantining either key.
            for tag in ("a", "b"):
                service.submit(
                    compile_request(TRIVIAL + f"// storm {tag}", chaos="crash")
                )
            assert service.health == "degraded"
            # New work is demoted to the cheap rung while degraded.
            demoted = service.submit(compile_request(SIEVE_LIKE))
            assert demoted["ok"]
            assert demoted["rung_start"] == "linearscan"
            assert "degraded" in demoted["rung_reason"]
            # The window passes quietly: health self-recovers.
            assert wait_until(lambda: service.health == "healthy", timeout=3.0)
            full = service.submit(compile_request(SIEVE_LIKE))
            assert full["ok"] and full["rung_start"] == "rap"
            # Demotion changed the key: no stale collision between the
            # degraded and full-rung artifacts.
            assert demoted["key"] != full["key"]
        finally:
            service.drain(timeout=5.0)


class TestProcessDrain:
    def test_drain_answers_in_flight_and_reaps_children(self):
        service = make_service(workers=2)
        supervisor = service._supervisor
        try:
            results = []

            def submit(request, name):
                def run():
                    results.append((name, service.submit(request)))

                thread = threading.Thread(target=run, daemon=True)
                thread.start()
                return thread

            threads = [
                submit(compile_request(SIEVE_LIKE, k=3 + i), f"j{i}")
                for i in range(4)
            ]
            time.sleep(0.05)  # some in flight, some queued
            service.drain(timeout=10.0)
            for thread in threads:
                thread.join(timeout=10)
            assert len(results) == 4
            assert all(response["ok"] for _, response in results)
        finally:
            if service._started:
                service.drain(timeout=5.0)
        # Every child reaped: no zombies survive a drain.
        assert supervisor.reaped()
        assert not any(
            proc.name.startswith("compile-worker-proc")
            for proc in multiprocessing.active_children()
        )

    def test_drain_mid_chaos_still_reaps(self):
        service = make_service()
        supervisor = service._supervisor
        try:
            # Leave a crashed-and-respawned child running, then drain.
            service.submit(compile_request(TRIVIAL + "// pre", chaos="crash"))
            assert service.submit(compile_request(SIEVE_LIKE))["ok"]
        finally:
            service.drain(timeout=10.0)
        assert supervisor.reaped()

    def test_accounting_conserves_every_admitted_request(self):
        service = make_service()
        try:
            service.submit(compile_request(SIEVE_LIKE))
            service.submit(compile_request(SIEVE_LIKE))  # warm
            service.submit(compile_request(TRIVIAL + "// c", chaos="crash"))
            service.submit(compile_request("void main() { int ; }"))
            stats = service.submit({"op": "stats"})
            assert (
                stats["requests"]
                == stats["answered"] + stats["cancelled"] + stats["rejected"]
            )
            assert stats["worker_mode"] == "process"
            assert "supervisor" in stats
        finally:
            service.drain(timeout=5.0)


@pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="reads /proc"
)
class TestDaemonKillOrphans:
    """SIGKILL of the daemon must not strand worker children.

    Fork copies every parent fd into a child: its own pipe's *parent*
    end, sibling pipes, and the TCP listener.  Without the fd hygiene in
    ``_worker_child_main`` a child never sees EOF when the daemon dies
    (it holds its own parent-end open) and its inherited listener copy
    keeps the dead daemon's port accepting connections nobody serves —
    clients and the router then hang on half-open sockets instead of
    getting ECONNREFUSED and failing over.
    """

    @staticmethod
    def _repro_children(pid):
        """Worker children of *pid* (fork copies the cmdline), ignoring
        multiprocessing helpers like the resource tracker.  Children are
        forked from dispatcher *threads*, so every task's children file
        must be read, not just the main thread's."""
        pids = set()
        try:
            for tid in os.listdir(f"/proc/{pid}/task"):
                try:
                    listing = open(f"/proc/{pid}/task/{tid}/children").read()
                except OSError:
                    continue
                pids.update(map(int, listing.split()))
        except OSError:
            return set()
        children = set()
        for child in pids:
            try:
                cmdline = open(f"/proc/{child}/cmdline", "rb").read()
            except OSError:
                continue
            if b"repro" in cmdline:
                children.add(child)
        return children

    @staticmethod
    def _exited(pid):
        try:
            state = open(f"/proc/{pid}/stat").read().rsplit(")", 1)[1].split()
        except OSError:
            return True  # gone entirely
        return state[0] == "Z"  # zombie: fds already closed

    def test_sigkill_frees_the_port_and_the_children(self):
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(port),
                "--worker-mode", "process",
                "--workers", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            text=True,
        )
        try:
            assert "listening" in daemon.stdout.readline()
            from repro.service.client import connect_with_retry

            # Two cold compiles force both worker children to fork —
            # the second child inherits the first child's pipe fds,
            # which is exactly the leak under test.
            with connect_with_retry(
                "127.0.0.1", port, timeout=30.0, retries=8, backoff=0.05
            ) as client:
                for k in (4, 5):
                    assert client.compile(
                        SIEVE_LIKE, allocator="linearscan", k=k
                    )["ok"]
            children = self._repro_children(daemon.pid)
            assert children, "no worker children forked"

            daemon.kill()
            daemon.wait(timeout=10)

            deadline = time.monotonic() + 10.0
            refused, alive = False, children
            while time.monotonic() < deadline and (alive or not refused):
                alive = {c for c in children if not self._exited(c)}
                try:
                    socket.create_connection(
                        ("127.0.0.1", port), timeout=0.5
                    ).close()
                    refused = False
                except ConnectionRefusedError:
                    refused = True
                except OSError:
                    pass
                time.sleep(0.1)
            assert not alive, f"orphaned worker children: {alive}"
            assert refused, "dead daemon's port still accepts connections"
        finally:
            if daemon.poll() is None:
                daemon.kill()
            daemon.stdout.close()
            daemon.wait(timeout=10)
