"""The chaos harness end to end: worker kills, hangs, and malformed
requests against a live daemon, with the exactly-one-typed-answer
invariant, warm-path determinism across churn, health recovery, and
SIGTERM drain through the real CLI."""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.service.cache import ArtifactCache
from repro.service.client import ServiceError, connect_with_retry
from repro.service.loadgen import default_mix, run_loadgen
from repro.service.server import CompileServer, CompileService
from repro.service.workers import Supervision

#: Bench programs only — the corpus would make chaos runs slow.
MIX = default_mix(("sieve", "hanoi"), corpus=False)


def start_server(service):
    server = CompileServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, server.server_address[1]


class TestChaosLoadgen:
    def test_chaos_run_is_fully_answered_and_deterministic(self):
        # Reference: the same request stream against a chaos-free
        # thread-tier server, for the byte-identity comparison.
        reference_service = CompileService(workers=2, worker_mode="thread")
        server, port = start_server(reference_service)
        try:
            reference = run_loadgen(
                port=port, requests=8, workers=2, mix=MIX, allocator="rap"
            )
        finally:
            server.drain_and_shutdown(timeout=10.0)
            server.server_close()
        assert reference.errors == 0 and reference.mismatches == 0

        # Chaos: process tier with a tight watchdog, probes interleaved.
        supervision = Supervision(
            job_timeout_s=1.5,
            backoff_base_s=0.01,
            backoff_cap_s=0.1,
            storm_threshold=4,
            storm_window_s=2.0,
            poison_threshold=10,  # strikes ride unique keys anyway
        )
        service = CompileService(
            workers=2,
            worker_mode="process",
            supervision=supervision,
            chaos_enabled=True,
        )
        server, port = start_server(service)
        try:
            report = run_loadgen(
                port=port,
                requests=8,
                workers=2,
                mix=MIX,
                allocator="rap",
                retries=4,
                chaos=True,
                chaos_crashes=2,
                chaos_hangs=1,
                chaos_malformed=2,
            )
            # The invariant: every request — normal or probe — got
            # exactly one typed answer; nothing fell on the floor.
            assert report.unanswered == 0
            assert report.chaos["unanswered"] == 0
            assert report.chaos["probes"] == 5
            kinds = report.chaos["answer_kinds"]
            assert kinds.get("worker-crash", 0) >= 1
            assert kinds.get("worker-timeout", 0) >= 1
            assert kinds.get("request", 0) == 2  # both malformed probes
            # The hang probe was answered by the watchdog, nowhere near
            # the client's socket timeout.
            assert report.chaos["hang_latency_ms"]
            assert max(report.chaos["hang_latency_ms"]) < 1_500 + 5_000
            # Warm-path determinism survived the churn: zero
            # disagreements within the run, byte-identical artifacts
            # against the chaos-free reference.
            assert report.mismatches == 0
            overlap = set(report.artifacts) & set(reference.artifacts)
            assert overlap  # same mix, same keys: must overlap
            for key in overlap:
                assert report.artifacts[key] == reference.artifacts[key]
            # With retries armed, the normal mix rode out the churn.
            assert report.ok == report.requests
            # Server-side conservation of every admitted request.
            with connect_with_retry("127.0.0.1", port, retries=3) as client:
                stats = client.stats()
            assert (
                stats["requests"]
                == stats["answered"] + stats["cancelled"] + stats["rejected"]
            )
            # Backoff recovery: once the storm window passes without a
            # new death, the service reports healthy again.
            deadline = time.monotonic() + 6.0
            while service.health != "healthy" and time.monotonic() < deadline:
                time.sleep(0.05)
            assert service.health == "healthy"
        finally:
            server.drain_and_shutdown(timeout=10.0)
            server.server_close()

    def test_chaos_probes_do_not_poison_the_normal_mix(self):
        service = CompileService(
            workers=1,
            worker_mode="process",
            supervision=Supervision(
                job_timeout_s=1.5,
                backoff_base_s=0.01,
                storm_threshold=10,
                poison_threshold=2,
            ),
            chaos_enabled=True,
        )
        server, port = start_server(service)
        try:
            report = run_loadgen(
                port=port,
                requests=4,
                workers=1,
                mix=MIX,
                allocator="linearscan",
                retries=3,
                chaos=True,
                chaos_crashes=2,
                chaos_hangs=0,
                chaos_malformed=0,
            )
            assert report.unanswered == 0
            # Dedicated probe sources: no normal-mix key was quarantined.
            with connect_with_retry("127.0.0.1", port, retries=3) as client:
                stats = client.stats()
            for key in report.artifacts:
                assert key not in stats["quarantined"]
            assert report.ok == report.requests
        finally:
            server.drain_and_shutdown(timeout=10.0)
            server.server_close()


class TestSigtermDrain:
    def test_sigterm_mid_chaos_drains_cleanly(self, tmp_path):
        """The real signal path: serve --chaos under SIGTERM mid-run
        answers in-flight work, reaps its workers, and exits 0."""
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(port),
                "--worker-mode", "process",
                "--workers", "1",
                "--job-timeout", "2",
                "--chaos",
                "--queue-limit", "8",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            text=True,
        )
        try:
            assert "listening" in daemon.stdout.readline()
            client = connect_with_retry(
                "127.0.0.1", port, timeout=30.0, retries=8, backoff=0.05
            )
            answers = []
            with client:
                name, source = MIX[0]
                assert client.compile(
                    source, allocator="linearscan", filename=name
                )["ok"]

                # Leave a crash probe's respawned worker running and a
                # compile in flight when the signal lands.
                def in_flight():
                    try:
                        answers.append(
                            client.compile(
                                MIX[1][1],
                                allocator="rap",
                                filename=MIX[1][0],
                            )
                        )
                    except ServiceError as err:
                        answers.append({"ok": False, "kind": err.kind})

                worker = threading.Thread(target=in_flight, daemon=True)
                worker.start()
                time.sleep(0.15)
                daemon.send_signal(signal.SIGTERM)
                worker.join(timeout=30)
            output, _ = daemon.communicate(timeout=30)
            assert daemon.returncode == 0
            assert "drained; bye" in output
            # The in-flight compile was answered, not dropped.
            assert len(answers) == 1
            assert answers[0].get("ok"), answers[0]
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate(timeout=10)
