"""Single-sourced defaults: the parsers, implementation signatures, and
``--help`` text must all agree with :mod:`repro.service.defaults`.

This is the enforcement arm of the defaults module — any hand-written
default that drifts from the constants module fails here instead of
drifting silently in the docs.
"""

import inspect

from repro.service import defaults
from repro.service.client import (
    ServiceClient,
    build_request_parser,
    connect_with_retry,
)
from repro.service.loadgen import (
    build_loadgen_parser,
    run_loadgen,
    run_saturation,
)
from repro.service.router import RouterService, build_router_parser
from repro.service.server import (
    DEFAULT_RUNG_POLICY,
    _DEFAULT_WAIT_S,
    _GRACE_S,
    CompileService,
    build_serve_parser,
)
from repro.service.workers import Supervision


def _signature_defaults(callable_):
    return {
        name: parameter.default
        for name, parameter in inspect.signature(callable_).parameters.items()
        if parameter.default is not inspect.Parameter.empty
    }


class TestServeParser:
    def test_flag_defaults(self):
        parser = build_serve_parser()
        assert parser.get_default("host") == defaults.HOST
        assert parser.get_default("port") == defaults.PORT
        assert parser.get_default("queue_limit") == defaults.QUEUE_LIMIT
        assert parser.get_default("worker_mode") == defaults.WORKER_MODE
        # None-defaulted flags resolve at runtime; the *resolved* values
        # live in Supervision / ArtifactCache, audited below.
        assert parser.get_default("job_timeout") is None
        assert parser.get_default("cache_bytes") is None
        assert parser.get_default("cache_shards") is None

    def test_help_text_numbers_match(self):
        text = build_serve_parser().format_help()
        assert f"default: {defaults.JOB_TIMEOUT_S:.0f}" in text
        assert f"default: {defaults.STORM_WINDOW_S:.0f}" in text
        assert f"default: {defaults.CACHE_BYTES // (1024 * 1024)} MiB" in text
        assert f"default: {defaults.CACHE_SHARDS}" in text
        assert defaults.WORKER_MODE in text


class TestSupervision:
    def test_dataclass_defaults(self):
        supervision = Supervision()
        assert supervision.job_timeout_s == defaults.JOB_TIMEOUT_S
        assert supervision.backoff_base_s == defaults.BACKOFF_BASE_S
        assert supervision.backoff_cap_s == defaults.BACKOFF_CAP_S
        assert supervision.storm_threshold == defaults.STORM_THRESHOLD
        assert supervision.storm_window_s == defaults.STORM_WINDOW_S
        assert supervision.poison_threshold == defaults.POISON_THRESHOLD


class TestServerPolicy:
    def test_rung_policy_and_waits(self):
        assert DEFAULT_RUNG_POLICY == (
            (defaults.DEADLINE_LINEARSCAN_MS, "linearscan"),
            (defaults.DEADLINE_SSASPILL_MS, "ssaspill"),
            (defaults.DEADLINE_GRA_MS, "gra"),
        )
        assert _GRACE_S == defaults.GRACE_S
        assert _DEFAULT_WAIT_S == defaults.WAIT_S

    def test_service_signature(self):
        sig = _signature_defaults(CompileService.__init__)
        assert sig["workers"] == defaults.THREAD_WORKERS
        assert sig["queue_limit"] == defaults.QUEUE_LIMIT


class TestClient:
    def test_client_signature(self):
        sig = _signature_defaults(ServiceClient.__init__)
        assert sig["host"] == defaults.HOST
        assert sig["port"] == defaults.PORT
        assert sig["timeout"] == defaults.CLIENT_TIMEOUT_S
        assert sig["retries"] == defaults.CLIENT_RETRIES
        assert sig["backoff"] == defaults.CLIENT_BACKOFF_S
        retry_sig = _signature_defaults(connect_with_retry)
        assert retry_sig["timeout"] == defaults.CLIENT_TIMEOUT_S
        assert retry_sig["retries"] == defaults.CLIENT_RETRIES

    def test_request_parser(self):
        parser = build_request_parser()
        assert parser.get_default("host") == defaults.HOST
        assert parser.get_default("port") == defaults.PORT
        assert parser.get_default("allocator") == defaults.ALLOCATOR
        assert parser.get_default("k") == defaults.K
        assert parser.get_default("retries") == defaults.CLIENT_RETRIES
        assert parser.get_default("backoff") == defaults.CLIENT_BACKOFF_S


class TestRouter:
    def test_router_parser(self):
        parser = build_router_parser()
        assert parser.get_default("host") == defaults.HOST
        assert parser.get_default("port") == defaults.ROUTER_PORT
        assert parser.get_default("vnodes") == defaults.ROUTER_VNODES
        assert parser.get_default("probe_interval") == (
            defaults.ROUTER_PROBE_INTERVAL_S
        )
        assert parser.get_default("probe_failures") == (
            defaults.ROUTER_PROBE_FAILURES
        )
        assert parser.get_default("timeout") == defaults.CLIENT_TIMEOUT_S

    def test_router_service_signature(self):
        sig = _signature_defaults(RouterService.__init__)
        assert sig["vnodes"] == defaults.ROUTER_VNODES
        assert sig["probe_interval_s"] == defaults.ROUTER_PROBE_INTERVAL_S
        assert sig["probe_failures"] == defaults.ROUTER_PROBE_FAILURES
        assert sig["timeout"] == defaults.CLIENT_TIMEOUT_S

    def test_router_port_does_not_collide_with_backend_port(self):
        assert defaults.ROUTER_PORT != defaults.PORT


class TestLoadgen:
    def test_loadgen_parser(self):
        parser = build_loadgen_parser()
        assert parser.get_default("host") == defaults.HOST
        assert parser.get_default("port") == defaults.PORT
        assert parser.get_default("allocator") == defaults.ALLOCATOR
        assert parser.get_default("k") == defaults.K
        assert parser.get_default("saturate_steps") == (
            list(defaults.SATURATE_STEPS)
        )
        assert parser.get_default("requests_per_step") == (
            defaults.SATURATE_REQUESTS_PER_STEP
        )

    def test_run_signatures(self):
        sig = _signature_defaults(run_loadgen)
        assert sig["host"] == defaults.HOST
        assert sig["port"] == defaults.PORT
        assert sig["allocator"] == defaults.ALLOCATOR
        assert sig["k"] == defaults.K
        sat = _signature_defaults(run_saturation)
        assert sat["steps"] == defaults.SATURATE_STEPS
        assert sat["requests_per_step"] == defaults.SATURATE_REQUESTS_PER_STEP
        assert sat["knee_fraction"] == defaults.SATURATE_KNEE_FRACTION
