"""The closed-loop load generator, driven against an in-process daemon."""

import io
import threading

import pytest

from repro.service.loadgen import (
    LoadgenReport,
    default_mix,
    percentile,
    run_loadgen,
    run_saturation,
)
from repro.service.server import CompileServer, CompileService

TINY_MIX = [
    ("tiny-a", "void main() { print(1 + 2); }"),
    ("tiny-b", "void main() { int i; i = 6; print(i * 7); }"),
]


@pytest.fixture
def server():
    service = CompileService(workers=2)
    server = CompileServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.drain_and_shutdown(timeout=5.0)
    server.server_close()


def _address(server):
    return server.server_address[:2]


class TestPercentile:
    def test_nearest_rank(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 95.0) == 95.0
        assert percentile(values, 99.0) == 99.0
        assert percentile([], 50.0) == 0.0
        assert percentile([7.0], 99.0) == 7.0


class TestMix:
    def test_default_mix_includes_suite_and_corpus(self):
        names = [name for name, _ in default_mix()]
        assert "sieve" in names and "hanoi" in names
        assert any(name.startswith("corpus:") for name in names)
        sources = [source for _, source in default_mix()]
        assert all(isinstance(source, str) and source for source in sources)

    def test_corpus_can_be_left_out(self):
        names = [name for name, _ in default_mix(corpus=False)]
        assert names == ["sieve", "hanoi"]


class TestClosedLoop:
    def test_warm_pass_hits_and_speeds_up(self, server):
        host, port = _address(server)
        cold = run_loadgen(
            host, port, requests=len(TINY_MIX), workers=2, mix=TINY_MIX, k=5
        )
        assert cold.ok == len(TINY_MIX)
        assert cold.errors == 0 and cold.mismatches == 0
        assert cold.hits == 0

        warm = run_loadgen(
            host, port, requests=4 * len(TINY_MIX), workers=2, mix=TINY_MIX, k=5
        )
        assert warm.ok == 4 * len(TINY_MIX)
        assert warm.errors == 0 and warm.mismatches == 0
        # The acceptance bar: >= 90% hit rate on a repeated mix and
        # >= 2x the cold throughput (in practice the margin is huge —
        # a warm answer runs zero compiler stages).
        assert warm.hit_rate >= 0.9
        assert warm.throughput_rps >= 2 * cold.throughput_rps

    def test_report_shape_and_rendering(self, server):
        host, port = _address(server)
        stream = io.StringIO()
        report = run_loadgen(
            host,
            port,
            requests=4,
            workers=2,
            mix=TINY_MIX,
            k=3,
            stream=stream,
        )
        payload = report.as_dict()
        for field in (
            "requests",
            "ok",
            "errors",
            "hits",
            "misses",
            "mismatches",
            "hit_rate",
            "wall_s",
            "throughput_rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        ):
            assert field in payload, field
        text = stream.getvalue()
        assert "[loadgen]" in text
        assert "hit rate" in text

    def test_unreachable_server_reports_connect_errors(self):
        report = run_loadgen(
            "127.0.0.1", 1, requests=3, workers=2, mix=TINY_MIX
        )
        assert report.ok == 0
        assert report.errors >= 1
        assert "connect" in report.error_kinds

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            run_loadgen(mix=[])


class TestSaturation:
    def test_sweep_shape_and_knee(self, server):
        host, port = _address(server)
        stream = io.StringIO()
        summary = run_saturation(
            host=host,
            port=port,
            steps=(1, 2),
            requests_per_step=4,
            mix=TINY_MIX,
            stream=stream,
        )
        assert summary["target"] == f"{host}:{port}"
        assert summary["backends"] == 1  # plain daemon, not a router
        assert [step["concurrency"] for step in summary["steps"]] == [1, 2]
        for step in summary["steps"]:
            assert step["ok"] == 4
            assert step["errors"] == 0 and step["unanswered"] == 0
            assert step["throughput_rps"] > 0
            assert step["hit_rate"] == 1.0  # the warmup pass warmed it
            for field in ("p50_ms", "p95_ms", "p99_ms"):
                assert field in step
        assert summary["knee_concurrency"] in (1, 2)
        assert summary["max_throughput_rps"] == max(
            step["throughput_rps"] for step in summary["steps"]
        )
        text = stream.getvalue()
        assert "[saturate] warmup" in text and "knee at c=" in text

    def test_needs_at_least_one_step(self):
        with pytest.raises(ValueError):
            run_saturation(steps=())


class TestReportMath:
    def test_rates_with_no_traffic(self):
        report = LoadgenReport()
        assert report.hit_rate == 0.0
        assert report.throughput_rps == 0.0
        assert report.percentiles() == {
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
        }
