"""The consistent-hash router: ring math, forwarding, failover under a
backend kill, warm-affinity byte identity, and stats aggregation."""

import threading

import pytest

from repro.service.client import RETRYABLE_KINDS, ServiceClient, ServiceError
from repro.service.loadgen import run_loadgen
from repro.service.router import (
    Backend,
    HashRing,
    RouterServer,
    RouterService,
    affinity_key,
    _parse_backend,
)
from repro.service.server import CompileServer, CompileService

SOURCES = [
    f"int main() {{ int x; x = {n}; print(x + {n}); return 0; }}\n"
    for n in range(8)
]


def _start_backend(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("worker_mode", "thread")
    service = CompileService(**kwargs)
    server = CompileServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, server.server_address[1]


def _stop_backend(server):
    server.service.drain(timeout=5.0)
    server.shutdown()
    server.server_close()


def _kill_backend(server):
    """Hard stop: no drain, sockets torn down — the failover scenario."""
    server.shutdown()
    server.server_close()


@pytest.fixture
def pair():
    """Two live backends and a RouterService over them (no router TCP:
    handler-level tests call ``router.handle`` directly)."""
    servers = [_start_backend() for _ in range(2)]
    backends = [("127.0.0.1", port) for _, port in servers]
    router = RouterService(backends, probe_interval_s=0.1, probe_failures=2)
    yield router, [server for server, _ in servers]
    router.stop()
    for server, _ in servers:
        try:
            _stop_backend(server)
        except Exception:
            pass


class TestHashRing:
    NODES = ["10.0.0.1:9363", "10.0.0.2:9363", "10.0.0.3:9363"]

    def test_deterministic(self):
        ring = HashRing(self.NODES, vnodes=32)
        again = HashRing(self.NODES, vnodes=32)
        for i in range(100):
            assert ring.primary(f"key-{i}") == again.primary(f"key-{i}")

    def test_distribution_covers_every_node(self):
        ring = HashRing(self.NODES, vnodes=64)
        owners = {ring.primary(f"key-{i}") for i in range(300)}
        assert owners == set(self.NODES)

    def test_successors_visit_every_node_once(self):
        ring = HashRing(self.NODES, vnodes=16)
        order = list(ring.successors("some-key"))
        assert sorted(order) == sorted(self.NODES)
        assert len(set(order)) == len(self.NODES)

    def test_removal_moves_only_the_lost_arcs(self):
        # The consistent-hashing property: dropping one node must not
        # reshuffle keys owned by the survivors.
        full = HashRing(self.NODES, vnodes=64)
        reduced = HashRing(self.NODES[:-1], vnodes=64)
        moved = stayed = 0
        for i in range(400):
            key = f"key-{i}"
            before = full.primary(key)
            after = reduced.primary(key)
            if before == self.NODES[-1]:
                assert after in self.NODES[:-1]  # reassigned somewhere live
            elif before == after:
                stayed += 1
            else:
                moved += 1
        assert moved == 0 and stayed > 0

    def test_failover_order_matches_ring_successor(self):
        ring = HashRing(self.NODES, vnodes=16)
        key = "the-key"
        order = list(ring.successors(key))
        assert order[0] == ring.primary(key)

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(self.NODES, vnodes=0)

    def test_affinity_key_ignores_deadline(self):
        # Same request at different deadlines must land on the same
        # backend (the deadline changes the rung, not the affinity).
        base = {"op": "compile", "source": "x", "allocator": "rap", "k": 5}
        with_deadline = dict(base, deadline_ms=100.0)
        assert affinity_key(base) == affinity_key(with_deadline)
        assert affinity_key(base) != affinity_key(dict(base, source="y"))

    def test_parse_backend(self):
        assert _parse_backend("127.0.0.1:9363") == ("127.0.0.1", 9363)
        for bad in ("no-port", "host:", ":1234x", "host:port"):
            with pytest.raises(ValueError):
                _parse_backend(bad)


class TestRouting:
    def test_ping_and_unknown_op_answer_locally(self, pair):
        router, _ = pair
        pong = router.handle({"op": "ping"})
        assert pong["ok"] and pong["router"] and pong["backends_total"] == 2
        bad = router.handle({"op": "nope"})
        assert not bad["ok"] and bad["error"]["kind"] == "request"

    def test_forwarding_and_warm_affinity(self, pair):
        router, _ = pair
        request = {"op": "compile", "source": SOURCES[0], "allocator": "rap",
                   "k": 5, "filename": "t0"}
        cold = router.handle(dict(request))
        assert cold["ok"] and cold["cache"] == "miss"
        assert cold["router_failovers"] == 0
        warm = router.handle(dict(request))
        assert warm["ok"] and warm["cache"] == "hit"
        # Affinity: the repeat hit the same backend's cache.
        assert warm["backend"] == cold["backend"]
        assert warm["image_sha256"] == cold["image_sha256"]

    def test_spread_across_backends(self, pair):
        router, _ = pair
        used = set()
        for i, source in enumerate(SOURCES):
            response = router.handle(
                {"op": "compile", "source": source, "allocator": "rap",
                 "k": 5, "filename": f"t{i}"}
            )
            assert response["ok"]
            used.add(response["backend"])
        assert len(used) == 2  # 8 distinct keys land on both backends

    def test_server_answered_errors_pass_through(self, pair):
        router, _ = pair
        response = router.handle(
            {"op": "compile", "source": "", "allocator": "rap", "k": 5}
        )
        assert not response["ok"]
        assert response["error"]["kind"] == "request"  # not no-backend

    def test_stats_aggregation(self, pair):
        router, _ = pair
        for i, source in enumerate(SOURCES[:4]):
            router.handle(
                {"op": "compile", "source": source, "allocator": "rap",
                 "k": 5, "filename": f"t{i}"}
            )
            router.handle(
                {"op": "compile", "source": source, "allocator": "rap",
                 "k": 5, "filename": f"t{i}"}
            )
        stats = router.handle({"op": "stats"})
        assert stats["ok"]
        assert stats["router"]["forwarded"] == 8
        assert len(stats["backends"]) == 2
        assert all("stats" in snap for snap in stats["backends"])
        # The aggregate equals the sum over backend caches.
        summed = sum(
            snap["stats"]["cache"]["hits"] for snap in stats["backends"]
        )
        assert stats["cache"]["hits"] == summed == 4
        assert stats["cache"]["misses"] == 4
        assert "miss_kinds" in stats["cache"]
        assert stats["cache"]["miss_kinds"].get("source", 0) == 4


class TestFailover:
    def test_backend_kill_fails_over_to_ring_successor(self, pair):
        router, servers = pair
        # Find a request whose primary is backend 0, then kill backend 0.
        victim = list(router.backends)[0]
        request = None
        for i, source in enumerate(SOURCES):
            candidate = {"op": "compile", "source": source,
                         "allocator": "rap", "k": 5, "filename": f"t{i}"}
            if router.ring.primary(affinity_key(candidate)) == victim:
                request = candidate
                break
        assert request is not None
        victim_index = [
            i for i, server in enumerate(servers)
            if f"127.0.0.1:{server.server_address[1]}" == victim
        ][0]
        _kill_backend(servers[victim_index])

        response = router.handle(dict(request))
        assert response["ok"], response
        assert response["router_failovers"] >= 1
        assert response["backend"] != victim
        # The failed forward counted against the victim's health ledger.
        assert router.backends[victim].snapshot()["failed"] >= 1

    def test_all_backends_down_is_typed_no_backend(self):
        servers = [_start_backend() for _ in range(2)]
        backends = [("127.0.0.1", port) for _, port in servers]
        router = RouterService(backends, probe_interval_s=30.0,
                               probe_failures=1)
        for server, _ in servers:
            _kill_backend(server)
        try:
            response = router.handle(
                {"op": "compile", "source": SOURCES[0], "allocator": "rap",
                 "k": 5}
            )
            assert not response["ok"]
            assert response["error"]["kind"] == "no-backend"
            assert "no-backend" in RETRYABLE_KINDS  # clients may retry it
        finally:
            router.stop()

    def test_probe_marks_dead_backend_unhealthy_then_skips_it(self, pair):
        router, servers = pair
        victim = list(router.backends)[0]
        victim_index = [
            i for i, server in enumerate(servers)
            if f"127.0.0.1:{server.server_address[1]}" == victim
        ][0]
        _kill_backend(servers[victim_index])
        backend = router.backends[victim]
        for _ in range(router.probe_failures):
            assert router.probe(backend) is False
        assert backend.healthy is False
        # Every request now routes straight to the survivor: no failover
        # hops, all answered.
        for i, source in enumerate(SOURCES):
            response = router.handle(
                {"op": "compile", "source": source, "allocator": "rap",
                 "k": 5, "filename": f"t{i}"}
            )
            assert response["ok"]
            assert response["backend"] != victim
            assert response["router_failovers"] == 0

    def test_probe_recovery_restores_health(self):
        server, port = _start_backend()
        try:
            router = RouterService(
                [("127.0.0.1", port)], probe_interval_s=30.0,
                probe_failures=1,
            )
            backend = router.backends[f"127.0.0.1:{port}"]
            backend.note_failure(1)  # knocked unhealthy
            assert backend.healthy is False
            assert router.probe(backend) is True
            assert backend.healthy is True
            router.stop()
        finally:
            _stop_backend(server)


class TestEndToEndTCP:
    """The full stack: loadgen -> router TCP -> 2 backend daemons."""

    def _start(self, servers):
        backends = [
            ("127.0.0.1", server.server_address[1]) for server in servers
        ]
        router = RouterService(backends, probe_interval_s=0.1,
                               probe_failures=2)
        router_server = RouterServer(("127.0.0.1", 0), router)
        thread = threading.Thread(
            target=router_server.serve_forever, daemon=True
        )
        thread.start()
        return router_server, router_server.server_address[1]

    def test_loadgen_through_router_with_midrun_kill(self):
        # The acceptance scenario: full mix through the router, one
        # backend killed mid-run, zero lost requests (every admitted
        # request gets exactly one typed answer), and warm artifacts
        # byte-identical to a single-daemon run of the same mix.
        servers = [_start_backend()[0] for _ in range(2)]
        router_server, router_port = self._start(servers)
        mix = [(f"t{i}", source) for i, source in enumerate(SOURCES)]
        try:
            cold = run_loadgen(
                port=router_port, requests=16, workers=2, mix=mix, retries=3
            )
            assert cold.unanswered == 0 and cold.errors == 0
            assert cold.mismatches == 0

            killer = threading.Timer(
                0.05, lambda: _kill_backend(servers[0])
            )
            killer.start()
            warm = run_loadgen(
                port=router_port, requests=32, workers=4, mix=mix, retries=3
            )
            killer.join()
            # Zero lost requests under the kill: every request answered,
            # determinism intact.
            assert warm.unanswered == 0, warm.error_kinds
            assert warm.mismatches == 0

            # Surviving-backend artifacts byte-identical to a
            # single-daemon run of the same mix.
            solo_server, solo_port = _start_backend()
            try:
                solo = run_loadgen(
                    port=solo_port, requests=16, workers=2, mix=mix
                )
                for key, sha in warm.artifacts.items():
                    assert solo.artifacts.get(key, sha) == sha
                overlap = set(warm.artifacts) & set(solo.artifacts)
                assert overlap  # the comparison actually compared keys
            finally:
                _stop_backend(solo_server)
        finally:
            router_server.router.stop()
            router_server.shutdown()
            router_server.server_close()
            for server in servers[1:]:
                try:
                    _stop_backend(server)
                except Exception:
                    pass

    def test_service_client_speaks_to_router_unchanged(self):
        servers = [_start_backend()[0] for _ in range(2)]
        router_server, router_port = self._start(servers)
        try:
            with ServiceClient("127.0.0.1", router_port) as client:
                assert client.ping() is True
                response = client.compile(SOURCES[0], filename="t0")
                assert response["ok"] and "backend" in response
                stats = client.stats()
                assert stats["router"]["forwarded"] >= 1
        finally:
            router_server.router.stop()
            router_server.shutdown()
            router_server.server_close()
            for server in servers:
                _stop_backend(server)


class TestBackendLedger:
    def test_counters_and_snapshot(self):
        backend = Backend("127.0.0.1", 9999)
        assert backend.healthy
        backend.note_failure(2, forwarding=True)
        assert backend.healthy  # one strike, threshold two
        backend.note_failure(2)
        assert not backend.healthy
        backend.note_routed()
        assert backend.healthy  # success restores
        snap = backend.snapshot()
        assert snap["routed"] == 1 and snap["failed"] == 1
        assert snap["name"] == "127.0.0.1:9999"
