"""The compile daemon: cache semantics, deadline policy, admission
control, error transport, drain, and the TCP layer."""

import threading
import time

import pytest

from repro.interp.machine import run_program
from repro.interp.serialize import loads_image
from repro.resilience.errors import (
    MotionValidationError,
    StageError,
)
from repro.service.cache import ArtifactCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import (
    DEFAULT_RUNG_POLICY,
    CompileServer,
    CompileService,
    DeadlineQueue,
    _Job,
    rung_for_deadline,
)

SIEVE_LIKE = """
void main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 25; i = i + 1) { s = s + i * i; }
    print(s);
}
"""

TRIVIAL = "void main() { print(7); }"


def compile_request(source=SIEVE_LIKE, **overrides):
    request = {
        "op": "compile",
        "source": source,
        "allocator": "rap",
        "k": 5,
    }
    request.update(overrides)
    return request


@pytest.fixture
def service():
    svc = CompileService(workers=2)
    svc.start()
    yield svc
    svc.drain(timeout=5.0)


class TestRungPolicy:
    def test_default_policy_table(self):
        assert rung_for_deadline("rap", None)[0] == "rap"
        assert rung_for_deadline("rap", 100)[0] == "linearscan"
        assert rung_for_deadline("rap", 250)[0] == "linearscan"
        assert rung_for_deadline("rap", 400)[0] == "ssaspill"
        assert rung_for_deadline("rap", 500)[0] == "ssaspill"
        assert rung_for_deadline("rap", 600)[0] == "gra"
        assert rung_for_deadline("rap", 5000)[0] == "rap"

    def test_policy_never_upgrades(self):
        # A generous deadline must not promote a cheap request to RAP.
        assert rung_for_deadline("linearscan", 5000)[0] == "linearscan"
        assert rung_for_deadline("ssaspill", 5000)[0] == "ssaspill"
        assert rung_for_deadline("gra", 600)[0] == "gra"
        assert rung_for_deadline("spillall", 100)[0] == "spillall"
        # A mid-band deadline still moves a RAP request down to the SSA
        # rung, but never moves an already-cheaper request up to it.
        assert rung_for_deadline("linearscan", 400)[0] == "linearscan"

    def test_reason_is_explanatory(self):
        _, reason = rung_for_deadline("rap", 100)
        assert "100" in reason and "linearscan" in reason


class TestDeadlineQueue:
    def test_earliest_deadline_first(self):
        queue = DeadlineQueue(limit=8)
        late = _Job(deadline_at=100.0, seq=0, request={"id": "late"})
        never = _Job(deadline_at=float("inf"), seq=0, request={"id": "never"})
        soon = _Job(deadline_at=5.0, seq=0, request={"id": "soon"})
        for job in (late, never, soon):
            assert queue.offer(job)
        order = [queue.take().request["id"] for _ in range(3)]
        assert order == ["soon", "late", "never"]

    def test_fifo_among_deadline_less(self):
        queue = DeadlineQueue(limit=8)
        for name in ("a", "b", "c"):
            queue.offer(_Job(float("inf"), 0, {"id": name}))
        assert [queue.take().request["id"] for _ in range(3)] == ["a", "b", "c"]

    def test_bounded(self):
        queue = DeadlineQueue(limit=2)
        assert queue.offer(_Job(float("inf"), 0, {}))
        assert queue.offer(_Job(float("inf"), 0, {}))
        assert not queue.offer(_Job(float("inf"), 0, {}))


class TestColdAndWarm:
    def test_warm_request_skips_every_compiler_stage(self, service):
        cold = service.submit(compile_request())
        assert cold["ok"] and cold["cache"] == "miss"
        assert "parse" in cold["stages_run"]
        assert "allocate" in cold["stages_run"]
        warm = service.submit(compile_request())
        assert warm["ok"] and warm["cache"] == "hit"
        # The acceptance criterion: byte-identical artifact, zero
        # compiler stages executed (telemetry stage counters are the
        # proof — nothing was recorded for the warm request).
        assert warm["stages_run"] == []
        assert warm["image_sha256"] == cold["image_sha256"]
        assert warm["output"] == cold["output"]
        assert warm["cycles"] == cold["cycles"]
        stats = service.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_server_lifetime_metrics_freeze_when_warm(self, service):
        service.submit(compile_request())
        allocate_calls = service.metrics.stages["allocate"].calls
        for _ in range(3):
            service.submit(compile_request())
        assert service.metrics.stages["allocate"].calls == allocate_calls

    def test_cached_blob_is_a_runnable_image(self, service):
        response = service.submit(compile_request())
        entry = service.cache.get(response["key"])
        image = loads_image(entry.blob)
        stats = run_program(image)
        assert stats.output == response["output"]
        assert stats.total.cycles == response["cycles"]

    def test_different_k_is_a_different_artifact(self, service):
        a = service.submit(compile_request(k=3))
        b = service.submit(compile_request(k=9))
        assert a["key"] != b["key"]
        assert a["output"] == b["output"]  # same program semantics

    def test_schedule_flag_is_part_of_the_key(self, service):
        plain = service.submit(compile_request())
        scheduled = service.submit(compile_request(schedule=True))
        assert plain["key"] != scheduled["key"]
        assert scheduled["cache"] == "miss"
        assert plain["output"] == scheduled["output"]

    def test_provided_empty_cache_is_not_discarded(self, tmp_path):
        # Regression: an empty ArtifactCache is falsy (__len__ == 0), so
        # `cache or ArtifactCache()` silently replaced it and dropped the
        # persist_dir configuration on the floor.
        cache = ArtifactCache(persist_dir=str(tmp_path))
        service = CompileService(cache=cache, workers=1)
        assert service.cache is cache

    def test_restarted_server_is_warm_from_disk(self, tmp_path):
        first = CompileService(
            cache=ArtifactCache(persist_dir=str(tmp_path)), workers=1
        )
        first.start()
        try:
            cold = first.submit(compile_request())
            assert cold["cache"] == "miss"
        finally:
            first.drain(timeout=5.0)

        second = CompileService(
            cache=ArtifactCache(persist_dir=str(tmp_path)), workers=1
        )
        second.start()
        try:
            warm = second.submit(compile_request())
            assert warm["cache"] == "hit"
            assert warm["stages_run"] == []
            assert warm["image_sha256"] == cold["image_sha256"]
            assert warm["output"] == cold["output"]
            assert second.cache.disk_hits == 1
        finally:
            second.drain(timeout=5.0)

    def test_deadline_rung_reported(self, service):
        tight = service.submit(compile_request(deadline_ms=100))
        assert tight["ok"]
        assert tight["rung_start"] == "linearscan"
        assert tight["allocator_used"] == "linearscan"
        generous = service.submit(compile_request(deadline_ms=60_000))
        assert generous["rung_start"] == "rap"


class TestErrorTransport:
    def test_parse_error_travels_frozen(self, service):
        response = service.submit(compile_request(source="void main() { int ; }"))
        assert not response["ok"]
        error = StageError.thaw(response["error"])
        assert error.stage == "parse"

    def test_malformed_requests_are_soft_errors(self, service):
        assert not service.submit({"op": "nope"})["ok"]
        assert not service.submit(compile_request(source=""))["ok"]
        response = service.submit(compile_request(allocator="wat"))
        assert not response["ok"]
        assert "wat" in response["error"]["message"]

    def test_validation_error_kind_thaws_to_subclass(self):
        # Client-side: a frozen validator error rebuilds as the proper
        # exception subclass, so remote failures are catchable precisely.
        payload = {
            "kind": "motion-validation",
            "message": "hoisted store dropped",
            "context": {"stage": "validate", "allocator": "rap", "k": 3},
            "cause": None,
        }
        err = ServiceError(payload)
        assert isinstance(err.stage_error, MotionValidationError)
        assert err.stage_error.context.allocator == "rap"

    def test_admission_and_deadline_errors_have_no_stage_error(self):
        err = ServiceError({"kind": "admission", "message": "queue full"})
        assert err.stage_error is None
        assert "queue full" in str(err)


def _submit_async(service, request, results, name):
    def run():
        response = service.submit(request)
        results.append((name, response))

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


class TestAdmissionControl:
    def test_full_queue_rejects_immediately(self):
        service = CompileService(
            workers=1, queue_limit=2, worker_delay_s=0.25
        )
        service.start()
        try:
            results = []
            threads = [
                _submit_async(
                    service, compile_request(TRIVIAL, k=3 + i), results, f"j{i}"
                )
                for i in range(3)
            ]
            time.sleep(0.1)  # one in flight, two queued: saturated
            started = time.perf_counter()
            rejected = service.submit(compile_request(TRIVIAL, k=9))
            elapsed = time.perf_counter() - started
            assert not rejected["ok"]
            assert rejected["error"]["kind"] == "admission"
            assert elapsed < 0.2  # immediate, not queued behind the stall
            for thread in threads:
                thread.join(timeout=10)
            assert all(response["ok"] for _, response in results)
        finally:
            service.drain(timeout=5.0)

    def test_saturated_queue_serves_tight_deadlines_first(self):
        # The pinned EDF property: with one worker busy and generous
        # requests queued, a late-arriving tight-deadline request is
        # served next (on the cheap rung), and nothing starves.
        service = CompileService(
            workers=1,
            queue_limit=16,
            worker_delay_s=0.12,
            # Rescaled policy so the "tight" class is still generous
            # enough to actually finish behind a 120ms stall.
            rung_policy=((5_000.0, "linearscan"), (20_000.0, "gra")),
        )
        service.start()
        try:
            results = []
            threads = [
                _submit_async(
                    service,
                    compile_request(TRIVIAL, k=3 + i, deadline_ms=90_000),
                    results,
                    f"generous{i}",
                )
                for i in range(4)
            ]
            time.sleep(0.06)  # generous0 in flight, 1-3 queued
            threads.append(
                _submit_async(
                    service,
                    compile_request(TRIVIAL, k=8, deadline_ms=4_000),
                    results,
                    "tight",
                )
            )
            for thread in threads:
                thread.join(timeout=30)
            by_name = dict(results)
            assert len(by_name) == 5
            assert all(response["ok"] for response in by_name.values())
            completion = [name for name, _ in results]
            # The tight request jumped every queued generous one.
            assert completion.index("tight") <= 1
            assert by_name["tight"]["allocator_used"] == "linearscan"
            assert by_name["tight"]["rung_start"] == "linearscan"
        finally:
            service.drain(timeout=5.0)

    def test_deadline_expired_in_queue_is_not_compiled(self):
        service = CompileService(workers=1, queue_limit=8, worker_delay_s=0.2)
        service.start()
        try:
            results = []
            blocker = _submit_async(
                service, compile_request(TRIVIAL, k=3), results, "blocker"
            )
            time.sleep(0.05)  # blocker in flight for ~200ms more
            doomed = service.submit(compile_request(TRIVIAL, k=9, deadline_ms=40))
            assert not doomed["ok"]
            assert doomed["error"]["kind"] == "deadline"
            blocker.join(timeout=10)
            assert results[0][1]["ok"]
            # The doomed request never touched the compiler.
            assert service._expired == 1
        finally:
            service.drain(timeout=5.0)


class TestOrphanedJobs:
    """Regression: a submitter whose wait times out used to leave the
    job live in the queue, and a worker later compiled it for nobody.
    The claim/cancel protocol tombstones it instead."""

    def test_claim_and_cancel_are_mutually_exclusive(self):
        job = _Job(float("inf"), 0, {})
        assert job.cancel()  # submitter gave up first
        assert not job.claim()  # worker must skip it
        other = _Job(float("inf"), 0, {})
        assert other.claim()  # worker got there first
        assert not other.cancel()  # submitter must keep waiting

    def test_cancelled_job_is_skipped_without_compiling(self):
        service = CompileService(workers=1)
        job = _Job(float("inf"), 0, compile_request(TRIVIAL))
        assert service.queue.offer(job)
        assert job.cancel()
        service.start()
        try:
            deadline = time.monotonic() + 5.0
            while service._orphaned_skipped == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert service._orphaned_skipped == 1
            # Never claimed, never answered, never compiled.
            assert job.response is None
            assert "parse" not in service.metrics.stages
        finally:
            service.drain(timeout=5.0)

    def test_timed_out_submit_tombstones_the_job(self, monkeypatch):
        from repro.service import server as server_mod

        # Shrink the grace period so the submit-side wait (deadline +
        # grace) elapses while the single worker is still stalled on a
        # blocker job.
        monkeypatch.setattr(server_mod, "_GRACE_S", 0.01)
        service = CompileService(workers=1, worker_delay_s=0.4)
        service.start()
        try:
            results = []
            blocker = _submit_async(
                service, compile_request(TRIVIAL, k=3), results, "blocker"
            )
            time.sleep(0.05)  # blocker claimed and stalled in its delay
            doomed = service.submit(compile_request(TRIVIAL, k=9, deadline_ms=50))
            assert not doomed["ok"]
            assert doomed["error"]["kind"] == "deadline"
            assert service._cancelled == 1
            blocker.join(timeout=10)
            assert results[0][1]["ok"]
            # The worker skipped the tombstone instead of compiling it.
            deadline = time.monotonic() + 5.0
            while service._orphaned_skipped == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert service._orphaned_skipped == 1
            stats = service.submit({"op": "stats"})
            # Conservation: every admitted request is accounted exactly
            # once across answered/cancelled.
            assert (
                stats["requests"]
                == stats["answered"] + stats["cancelled"] + stats["rejected"]
            )
        finally:
            service.drain(timeout=5.0)


class TestDrain:
    def test_drain_finishes_queued_work_then_rejects(self):
        service = CompileService(workers=1, queue_limit=8, worker_delay_s=0.05)
        service.start()
        results = []
        threads = [
            _submit_async(
                service, compile_request(TRIVIAL, k=3 + i), results, f"j{i}"
            )
            for i in range(3)
        ]
        time.sleep(0.02)
        service.drain(timeout=10.0)
        for thread in threads:
            thread.join(timeout=10)
        assert len(results) == 3
        assert all(response["ok"] for _, response in results)
        late = service.submit(compile_request(TRIVIAL))
        assert not late["ok"]
        assert late["error"]["kind"] == "admission"
        assert "drain" in late["error"]["message"]


class TestStats:
    def test_stats_surface_cache_and_stage_aggregates(self, service):
        service.submit(compile_request())
        service.submit(compile_request())
        stats = service.submit({"op": "stats"})
        assert stats["ok"]
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["stages"]["allocate"]["calls"] >= 1
        assert stats["stages"]["parse"]["calls"] == 1
        assert stats["requests"] == 2
        assert stats["workers"] == 2
        assert stats["draining"] is False

    def test_stats_surface_interp_tier_census(self, service):
        response = service.submit(compile_request())
        assert response["ok"]
        # Executing cold compiles report which interpreter tier ran.
        assert response["interp_tier"] == "compiled"
        stats = service.submit({"op": "stats"})
        assert stats["interp_tiers"].get("compiled", 0) >= 1
        assert stats["stages"]["execute"]["tiers"]["compiled"] >= 1

    def test_cache_hit_replays_stored_tier(self, service):
        cold = service.submit(compile_request())
        warm = service.submit(compile_request())
        assert warm["cache"] == "hit"
        assert warm.get("interp_tier") == cold["interp_tier"]


class TestTCPLayer:
    @pytest.fixture
    def server(self):
        service = CompileService(workers=2, cache=ArtifactCache())
        server = CompileServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.drain_and_shutdown(timeout=5.0)
        server.server_close()

    def _client(self, server):
        host, port = server.server_address[:2]
        return ServiceClient(host, port)

    def test_many_requests_on_one_connection(self, server):
        with self._client(server) as client:
            assert client.ping()
            cold = client.compile(SIEVE_LIKE, allocator="rap", k=5)
            warm = client.compile(SIEVE_LIKE, allocator="rap", k=5)
            assert cold["cache"] == "miss" and warm["cache"] == "hit"
            assert warm["image_sha256"] == cold["image_sha256"]
            assert warm["output"] == cold["output"]
            stats = client.stats()
            assert stats["cache"]["hits"] == 1

    def test_pipeline_error_raises_service_error(self, server):
        with self._client(server) as client:
            with pytest.raises(ServiceError) as info:
                client.compile("void main() { int ; }")
            assert info.value.stage_error is not None
            assert info.value.stage_error.stage == "parse"

    def test_two_clients_share_the_cache(self, server):
        with self._client(server) as one:
            one.compile(TRIVIAL, k=4)
        with self._client(server) as two:
            response = two.compile(TRIVIAL, k=4)
        assert response["cache"] == "hit"
