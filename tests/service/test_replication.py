"""The replicated artifact store and live ring membership: cache wire
ops, write-through replication, zero-warm-loss failover, read-repair,
hinted handoff, admin membership ops, and the full-ring-outage story."""

import threading
import time

import pytest

from repro.service.admin import build_admin_parser, _parse_address
from repro.service.client import (
    RETRYABLE_KINDS,
    ServiceClient,
    ServiceError,
    connect_with_retry,
)
from repro.service.router import (
    HandoffQueue,
    HashRing,
    RouterService,
    affinity_key,
)
from repro.service.server import CompileServer, CompileService

SOURCES = [
    f"int main() {{ int x; x = {n}; print(x + {n}); return 0; }}\n"
    for n in range(8)
]


def _compile_request(source, tag="t"):
    return {"op": "compile", "source": source, "allocator": "rap", "k": 5,
            "filename": tag}


def _start_backend(port=0, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("worker_mode", "thread")
    service = CompileService(**kwargs)
    server = CompileServer(("127.0.0.1", port), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, server.server_address[1]


def _stop_backend(server):
    server.service.drain(timeout=5.0)
    server.shutdown()
    server.server_close()


def _kill_backend(server):
    """Hard stop: no drain, sockets torn down — the failover scenario."""
    server.shutdown()
    server.server_close()


def _make_router(servers, replication=2, **kwargs):
    kwargs.setdefault("probe_interval_s", 30.0)  # probes driven by hand
    kwargs.setdefault("probe_failures", 2)
    backends = [("127.0.0.1", server.server_address[1]) for server in servers]
    return RouterService(backends, replication=replication, **kwargs)


def _mark_unhealthy(router, name):
    backend = router.backends[name]
    for _ in range(router.probe_failures):
        router.probe(backend)
    assert backend.healthy is False


@pytest.fixture
def trio():
    """Three live backends and an R=2 router over them."""
    servers = [_start_backend()[0] for _ in range(3)]
    router = _make_router(servers, replication=2)
    yield router, servers
    router.stop()
    for server in servers:
        try:
            _stop_backend(server)
        except Exception:
            pass


def _backend_for(router, name):
    """The in-process CompileService behind a roster name."""
    return router.backends[name]


def _service_at(servers, name):
    port = int(name.rsplit(":", 1)[1])
    for server in servers:
        if server.server_address[1] == port:
            return server.service
    raise AssertionError(f"no server at {name}")


# ----------------------------------------------------------------------------
# The cache wire ops (cache-get / cache-put / cache-keys, warm_only)
# ----------------------------------------------------------------------------


class TestCacheOps:
    def test_put_get_roundtrip(self):
        server, port = _start_backend()
        try:
            service = server.service
            cold = service.submit(_compile_request(SOURCES[0]))
            assert cold["ok"] and cold["cache"] == "miss"
            key = cold["key"]
            got = service.submit({"op": "cache-get", "key": key})
            assert got["ok"] and got["op"] == "cache-get"
            assert got["meta"]["image_sha256"] == cold["image_sha256"]

            # Round-trip into a second, empty backend.
            other, _ = _start_backend()
            try:
                put = other.service.submit(
                    {"op": "cache-put", "key": key,
                     "blob": got["blob"], "meta": got["meta"]}
                )
                assert put["ok"] and put["op"] == "cache-put"
                # The receiving backend now answers the compile warm,
                # byte-identical.
                warm = other.service.submit(_compile_request(SOURCES[0]))
                assert warm["ok"] and warm["cache"] == "hit"
                assert warm["image_sha256"] == cold["image_sha256"]
                assert warm["output"] == cold["output"]
            finally:
                _stop_backend(other)
        finally:
            _stop_backend(server)

    def test_get_miss_is_typed_replica_miss(self):
        server, _ = _start_backend()
        try:
            miss = server.service.submit(
                {"op": "cache-get", "key": "f" * 64}
            )
            assert not miss["ok"]
            assert miss["error"]["kind"] == "replica-miss"
            assert miss["key"] == "f" * 64  # top-level, for the router
            # Deliberately NOT client-retryable: it is a protocol answer
            # to the router, not a transient fault.
            assert "replica-miss" not in RETRYABLE_KINDS
        finally:
            _stop_backend(server)

    def test_put_refuses_checksum_mismatch(self):
        server, _ = _start_backend()
        try:
            refused = server.service.submit(
                {"op": "cache-put", "key": "a" * 64,
                 "blob": '{"forged": true}',
                 "meta": {"image_sha256": "0" * 64}}
            )
            assert not refused["ok"]
            assert refused["error"]["kind"] == "request"
            # Nothing was installed.
            still = server.service.submit({"op": "cache-get", "key": "a" * 64})
            assert not still["ok"]
        finally:
            _stop_backend(server)

    def test_cache_keys_lists_affinity(self, trio):
        router, servers = trio
        request = _compile_request(SOURCES[0])
        cold = router.handle(dict(request))
        assert cold["ok"]
        service = _service_at(servers, cold["backend"])
        listing = service.submit({"op": "cache-keys"})
        assert listing["ok"]
        keys = {item["key"]: item for item in listing["keys"]}
        assert cold["key"] in keys
        # The router stamped its affinity into the artifact meta — the
        # drain path re-places artifacts by it.
        assert keys[cold["key"]]["affinity"] == affinity_key(request)
        assert keys[cold["key"]]["bytes"] > 0

    def test_warm_only_probe(self):
        server, _ = _start_backend()
        try:
            service = server.service
            request = _compile_request(SOURCES[1])
            probe = dict(request, warm_only=True)
            cold = service.submit(dict(probe))
            assert not cold["ok"]
            assert cold["error"]["kind"] == "replica-miss"
            assert cold["cache"] == "miss"
            assert isinstance(cold["key"], str) and cold["key"]
            # The probe did not compile anything.
            assert service.submit({"op": "stats"})["cache"]["entries"] == 0
            # Warm it, and the same probe answers as a plain hit.
            assert service.submit(dict(request))["ok"]
            warm = service.submit(dict(probe))
            assert warm["ok"] and warm["cache"] == "hit"
        finally:
            _stop_backend(server)

    def test_probed_resend_is_accounting_neutral(self, trio):
        # One cold request through the replicating router must count
        # exactly one miss, and one warm request exactly one hit — the
        # probe/re-send dance and the write-through reads are plumbing.
        router, _ = trio
        request = _compile_request(SOURCES[2])
        assert router.handle(dict(request))["ok"]
        assert router.handle(dict(request))["ok"]
        stats = router.handle({"op": "stats"})
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hits"] == 1


# ----------------------------------------------------------------------------
# Write-through replication and failover
# ----------------------------------------------------------------------------


class TestReplication:
    def test_cold_compile_writes_through_to_replica(self, trio):
        router, servers = trio
        request = _compile_request(SOURCES[0])
        cold = router.handle(dict(request))
        assert cold["ok"] and cold["cache"] == "miss"
        replicas = router.ring.replicas(affinity_key(request), 2)
        assert cold["backend"] == replicas[0]
        # Both replica-set members hold the artifact, byte-identical.
        for name in replicas:
            got = _service_at(servers, name).submit(
                {"op": "cache-get", "key": cold["key"]}
            )
            assert got["ok"], f"{name} does not hold the artifact"
            assert got["meta"]["image_sha256"] == cold["image_sha256"]
        stats = router.handle({"op": "stats"})
        assert stats["router"]["replica_writes"] >= 1

    def test_zero_warm_loss_failover(self, trio):
        """ISSUE acceptance: kill any single backend mid-load; zero lost
        requests and a >= 90% post-failover warm rate for keys that were
        warm before the kill (with R=2 write-through it is in fact
        100%, and byte-identical)."""
        router, servers = trio
        baseline = {}
        for i, source in enumerate(SOURCES):
            response = router.handle(_compile_request(source, f"t{i}"))
            assert response["ok"]
            baseline[source] = response["image_sha256"]

        victim = list(router.backends)[0]
        _kill_backend(servers[[
            i for i, server in enumerate(servers)
            if f"127.0.0.1:{server.server_address[1]}" == victim
        ][0]])
        _mark_unhealthy(router, victim)

        answered = warm = 0
        for i, source in enumerate(SOURCES):
            response = router.handle(_compile_request(source, f"t{i}"))
            assert response["ok"], response  # zero lost requests
            assert response["backend"] != victim
            assert response["image_sha256"] == baseline[source]
            answered += 1
            if response["cache"] == "hit":
                warm += 1
        assert answered == len(SOURCES)
        assert warm / answered >= 0.9, f"warm rate {warm}/{answered}"
        assert warm == answered  # R=2: every previously-warm key survives

    def test_read_repair_restores_a_lost_primary_copy(self, trio):
        router, servers = trio
        request = _compile_request(SOURCES[3])
        cold = router.handle(dict(request))
        assert cold["ok"]
        primary = cold["backend"]
        # Surgically lose the primary's copy (simulates a restarted
        # daemon with a cold cache, without bouncing the port).
        _service_at(servers, primary).cache.clear()
        repaired = router.handle(dict(request))
        assert repaired["ok"]
        assert repaired["backend"] == primary
        # Repaired from the replica, answered warm — not recompiled.
        assert repaired["cache"] == "hit"
        assert repaired["image_sha256"] == cold["image_sha256"]
        stats = router.handle({"op": "stats"})
        assert stats["router"]["read_repairs"] >= 1

    def test_replica_down_queues_hint_and_probe_flushes_it(self):
        servers = [_start_backend()[0] for _ in range(2)]
        router = _make_router(servers, replication=2)
        try:
            request = _compile_request(SOURCES[4])
            replica = router.ring.replicas(affinity_key(request), 2)[1]
            replica_index = [
                i for i, server in enumerate(servers)
                if f"127.0.0.1:{server.server_address[1]}" == replica
            ][0]
            port = servers[replica_index].server_address[1]
            _kill_backend(servers[replica_index])
            _mark_unhealthy(router, replica)

            cold = router.handle(dict(request))
            assert cold["ok"] and cold["cache"] == "miss"
            snapshot = router.handoff.snapshot()
            assert snapshot["queued"] == 1 and snapshot["pending"] == 1

            # The daemon comes back on the same port; the next probe
            # success flushes the hint into it.
            servers[replica_index], _ = _start_backend(port=port)
            assert router.probe(router.backends[replica]) is True
            snapshot = router.handoff.snapshot()
            assert snapshot["flushed"] == 1 and snapshot["pending"] == 0
            got = servers[replica_index].service.submit(
                {"op": "cache-get", "key": cold["key"]}
            )
            assert got["ok"], "flushed hint did not land"
            assert got["meta"]["image_sha256"] == cold["image_sha256"]
        finally:
            router.stop()
            for server in servers:
                try:
                    _stop_backend(server)
                except Exception:
                    pass


class TestHandoffQueue:
    def test_offer_take_flush_accounting(self):
        queue = HandoffQueue(budget_bytes=1000)
        assert queue.offer("b1", "k1", "x" * 100, {"n": 1})
        assert queue.offer("b2", "k2", "y" * 100, {"n": 2})
        taken = queue.take("b1")
        assert [(key, blob) for key, blob, _ in taken] == [("k1", "x" * 100)]
        queue.note_flushed(len(taken))
        snapshot = queue.snapshot()
        assert snapshot["queued"] == 2
        assert snapshot["flushed"] == 1
        assert snapshot["pending"] == 1
        assert snapshot["pending_bytes"] == 100

    def test_same_slot_replaces_not_duplicates(self):
        queue = HandoffQueue(budget_bytes=1000)
        queue.offer("b1", "k1", "old" * 10, {})
        queue.offer("b1", "k1", "new" * 20, {})
        taken = queue.take("b1")
        assert len(taken) == 1
        assert taken[0][1] == "new" * 20
        assert queue.snapshot()["pending_bytes"] == 0

    def test_budget_overflow_drops_oldest_first(self):
        queue = HandoffQueue(budget_bytes=250)
        queue.offer("b1", "k1", "a" * 100, {})
        queue.offer("b1", "k2", "b" * 100, {})
        queue.offer("b1", "k3", "c" * 100, {})  # 300 > 250: k1 goes
        snapshot = queue.snapshot()
        assert snapshot["dropped"] == 1
        assert snapshot["pending"] == 2
        keys = [key for key, _, _ in queue.take("b1")]
        assert keys == ["k2", "k3"]

    def test_oversized_hint_refused_and_counted(self):
        queue = HandoffQueue(budget_bytes=50)
        assert queue.offer("b1", "huge", "z" * 51, {}) is False
        snapshot = queue.snapshot()
        assert snapshot["dropped"] == 1
        assert snapshot["pending"] == 0

    def test_discard_empties_a_backends_hints(self):
        queue = HandoffQueue(budget_bytes=1000)
        queue.offer("b1", "k1", "a" * 10, {})
        queue.offer("b2", "k2", "b" * 10, {})
        assert queue.discard("b1") == 1
        snapshot = queue.snapshot()
        assert snapshot["pending"] == 1
        assert snapshot["pending_bytes"] == 10


# ----------------------------------------------------------------------------
# Live membership: add / remove / drain, generation fencing, ownership
# ----------------------------------------------------------------------------


class TestMembership:
    def test_add_joins_ring_and_routes(self, trio):
        router, servers = trio
        newcomer, port = _start_backend()
        servers.append(newcomer)
        generation = router.generation
        added = router.handle(
            {"op": "backend-add", "backend": f"127.0.0.1:{port}"}
        )
        assert added["ok"] and added["healthy"] is True
        assert added["ring_generation"] == generation + 1
        assert f"127.0.0.1:{port}" in router.ring.nodes
        # Enough keys land on 4 backends that the newcomer serves some.
        used = set()
        for i in range(24):
            response = router.handle(
                _compile_request(SOURCES[i % len(SOURCES)] + f"// v{i}\n")
            )
            assert response["ok"]
            used.add(response["backend"])
        assert f"127.0.0.1:{port}" in used

    def test_add_duplicate_refused(self, trio):
        router, _ = trio
        name = list(router.backends)[0]
        dup = router.handle({"op": "backend-add", "backend": name})
        assert not dup["ok"] and dup["error"]["kind"] == "request"

    def test_remove_drops_node_and_keeps_serving(self, trio):
        router, _ = trio
        victim = list(router.backends)[0]
        removed = router.handle({"op": "backend-remove", "backend": victim})
        assert removed["ok"]
        assert victim not in router.backends
        assert victim not in router.ring.nodes
        for i, source in enumerate(SOURCES):
            response = router.handle(_compile_request(source, f"t{i}"))
            assert response["ok"] and response["backend"] != victim

    def test_last_backend_cannot_be_removed_or_drained(self):
        server, _ = _start_backend()
        router = _make_router([server], replication=2)
        try:
            name = list(router.backends)[0]
            for op in ("backend-remove", "backend-drain"):
                refused = router.handle({"op": op, "backend": name})
                assert not refused["ok"]
                assert refused["error"]["kind"] == "request"
                assert "last" in refused["error"]["message"]
        finally:
            router.stop()
            _stop_backend(server)

    def test_generation_fencing(self, trio):
        router, _ = trio
        victim = list(router.backends)[0]
        generation = router.generation
        stale = router.handle(
            {"op": "backend-remove", "backend": victim,
             "expect_generation": generation + 7}
        )
        assert not stale["ok"]
        assert stale["error"]["kind"] == "ring-generation-skew"
        assert victim in router.backends  # refused before mutating
        # The matching generation passes the fence.
        fenced = router.handle(
            {"op": "backend-remove", "backend": victim,
             "expect_generation": generation}
        )
        assert fenced["ok"]

    def test_drain_streams_warm_artifacts_to_new_owners(self, trio):
        router, servers = trio
        baseline = {}
        for i, source in enumerate(SOURCES):
            response = router.handle(_compile_request(source, f"t{i}"))
            assert response["ok"]
            baseline[source] = response["image_sha256"]
        victim = list(router.backends)[2]
        drained = router.handle({"op": "backend-drain", "backend": victim})
        assert drained["ok"], drained
        assert drained["stream_failed"] == 0
        assert victim not in router.backends
        # Every previously-warm key still answers warm, byte-identical,
        # without the drained node: its arcs' artifacts were streamed.
        for i, source in enumerate(SOURCES):
            response = router.handle(_compile_request(source, f"t{i}"))
            assert response["ok"] and response["backend"] != victim
            assert response["cache"] == "hit"
            assert response["image_sha256"] == baseline[source]

    def test_stats_report_ownership_shares(self, trio):
        router, _ = trio
        stats = router.handle({"op": "stats"})
        assert stats["ok"]
        assert stats["router"]["replication"] == 2
        assert stats["router"]["ring_generation"] == router.generation
        shares = {
            snap["name"]: snap["ring"] for snap in stats["backends"]
        }
        assert len(shares) == 3
        total_vnodes = sum(ring["vnodes"] for ring in shares.values())
        assert total_vnodes == router.vnodes * 3
        total_fraction = sum(
            ring["keyspace_fraction"] for ring in shares.values()
        )
        assert total_fraction == pytest.approx(1.0)
        for ring in shares.values():
            assert 0.0 < ring["keyspace_fraction"] < 1.0
        for counter in ("replica_writes", "read_repairs", "handoff_queued",
                        "handoff_flushed", "handoff_dropped"):
            assert counter in stats["router"]

    def test_ring_ownership_math(self):
        ring = HashRing(["a:1", "b:2", "c:3"], vnodes=64)
        ownership = ring.ownership()
        assert sum(o["vnodes"] for o in ownership.values()) == 192
        assert sum(
            o["keyspace_fraction"] for o in ownership.values()
        ) == pytest.approx(1.0)


# ----------------------------------------------------------------------------
# Full-ring outage and recovery (satellite S4)
# ----------------------------------------------------------------------------


class TestFullRingOutage:
    def test_no_backend_is_retryable_and_recovery_is_idempotent(self, tmp_path):
        from repro.service.cache import ArtifactCache

        server, port = _start_backend(
            cache=ArtifactCache(persist_dir=str(tmp_path))
        )
        router = _make_router([server], replication=2)
        try:
            request = _compile_request(SOURCES[5])
            cold = router.handle(dict(request))
            assert cold["ok"] and cold["cache"] == "miss"

            # The whole ring goes dark.  An in-thread kill closes the
            # listener but cannot reset already-established sockets the
            # way a dead process does, so sever the pooled client too.
            _kill_backend(server)
            _mark_unhealthy(router, f"127.0.0.1:{port}")
            router._drop_client(router.backends[f"127.0.0.1:{port}"])
            outage = router.handle(dict(request))
            assert not outage["ok"]
            assert outage["error"]["kind"] == "no-backend"
            assert "no-backend" in RETRYABLE_KINDS  # clients keep trying

            # The daemon restarts over the same disk tier; the next
            # probe readmits it and the request answers WARM — the cache
            # key made recovery idempotent, nothing recompiled.
            server, _ = _start_backend(
                port=port, cache=ArtifactCache(persist_dir=str(tmp_path))
            )
            assert router.probe(router.backends[f"127.0.0.1:{port}"]) is True
            recovered = router.handle(dict(request))
            assert recovered["ok"]
            assert recovered["cache"] == "hit"
            assert recovered["image_sha256"] == cold["image_sha256"]
        finally:
            router.stop()
            try:
                _stop_backend(server)
            except Exception:
                pass

    def test_connect_with_retry_rides_out_a_late_bind(self):
        placeholder, port = _start_backend()
        _kill_backend(placeholder)  # port known, nobody listening

        started = []

        def bind_later():
            time.sleep(0.3)
            started.append(_start_backend(port=port)[0])

        thread = threading.Thread(target=bind_later, daemon=True)
        thread.start()
        try:
            client = connect_with_retry(
                "127.0.0.1", port, timeout=5.0, retries=6, backoff=0.1
            )
            with client:
                assert client.checked({"op": "ping"})["ok"]
        finally:
            thread.join()
            for server in started:
                _stop_backend(server)

    def test_connect_with_retry_eventually_types_transport(self):
        placeholder, port = _start_backend()
        _kill_backend(placeholder)
        with pytest.raises(ServiceError) as excinfo:
            connect_with_retry(
                "127.0.0.1", port, timeout=0.5, retries=1, backoff=0.01
            )
        assert excinfo.value.kind == "transport"


# ----------------------------------------------------------------------------
# The admin CLI parser (the network paths are exercised by the drill)
# ----------------------------------------------------------------------------


class TestAdminCli:
    def test_parse_address(self):
        assert _parse_address("10.0.0.1:9363") == ("10.0.0.1", 9363)
        for bad in ("no-port", "host:", ":123x"):
            with pytest.raises(ValueError):
                _parse_address(bad)

    def test_parser_verbs_and_fencing_flag(self):
        parser = build_admin_parser()
        args = parser.parse_args(
            ["--expect-generation", "4", "drain", "127.0.0.1:9400"]
        )
        assert args.command == "drain"
        assert args.backend == "127.0.0.1:9400"
        assert args.expect_generation == 4
        assert parser.parse_args(["generation"]).command == "generation"
