"""Semantic checks of the benchmark programs themselves.

The Table-1 comparison only needs *identical* behaviour across allocators,
but the programs should also compute the right thing — a sieve that counts
wrong would still "reproduce" the table while being embarrassing.
"""

import pytest

from repro.bench.suite import program
from repro.compiler import compile_source
from repro.interp.machine import run_program


@pytest.fixture(scope="module")
def outputs():
    cache = {}

    def get(name):
        if name not in cache:
            bench = program(name)
            prog = compile_source(bench.source())
            cache[name] = run_program(
                prog.reference_image(), max_cycles=bench.max_cycles
            ).output
        return cache[name]

    return get


class TestKnownAnswers:
    def test_hanoi_moves(self, outputs):
        # 2^9 - 1 moves for 9 discs.
        assert outputs("hanoi") == [511]

    def test_sieve_prime_count(self, outputs):
        # pi(2048) = 309.
        assert outputs("sieve") == [309]

    def test_nsieve_totals(self, outputs):
        # pi(1024) + pi(512) + pi(256) = 172 + 97 + 54.
        assert outputs("nsieve") == [172 + 97 + 54]

    def test_queens_ten_solutions(self, outputs):
        out = outputs("queens")
        assert out[0] == 10          # 10 successful doit() calls
        assert 1 <= out[1] <= 8      # a valid queen position
        assert 1 <= out[2] <= 8

    def test_perm_counter(self, outputs):
        # Stanford Perm accumulates pctr across rounds: permute(7)
        # contributes 8660 calls, and the driver runs 4 rounds.
        assert outputs("perm") == [4 * 8660]

    def test_hsort_sorted(self, outputs):
        out = outputs("hsort")
        sorted_flag, first, last = out
        assert sorted_flag == 1
        assert first <= last

    def test_puzzle_solves(self, outputs):
        out = outputs("puzzle")
        assert out[0] == 1           # the scaled puzzle is solvable
        assert out[1] > 0            # and took some trials

    def test_linpack_factorization_sane(self, outputs):
        out = outputs("linpack")
        norm, info, check, b_last, imax = out
        assert norm > 0.0            # matgen produced a nonzero matrix
        assert info == 0             # no zero pivot
        assert b_last == 0.5         # dscal halved the ones vector
        assert 0 <= imax < 12

    def test_livermore_kernels_finite(self, outputs):
        out = outputs("livermore")
        assert len(out) == 13
        for value in out[:-1]:
            assert value == value    # no NaN
            assert abs(value) < 1e12
        assert 0 <= out[-1] < 48     # loop24 returns an index


class TestDeterminism:
    @pytest.mark.parametrize("name", ["sieve", "queens", "hsort"])
    def test_two_runs_identical(self, name):
        bench = program(name)
        prog = compile_source(bench.source())
        first = run_program(prog.reference_image(), max_cycles=bench.max_cycles)
        second = run_program(prog.reference_image(), max_cycles=bench.max_cycles)
        assert first.output == second.output
        assert first.total.cycles == second.total.cycles
