"""Tests for the harness's spill-code detector (drives Table 1's blanks)."""

from repro.bench.harness import _has_spill_code
from repro.ir import iloc
from repro.ir.iloc import Symbol, vreg


def test_allocator_slot_detected():
    code = [iloc.ldm(Symbol("f.%v3"), vreg(0))]
    assert _has_spill_code(code, "f")


def test_store_also_detected():
    code = [iloc.stm(Symbol("f.%v3"), vreg(0))]
    assert _has_spill_code(code, "f")


def test_argument_slots_do_not_count():
    # Incoming-argument traffic is the calling convention, not spill code.
    code = [iloc.ldm(Symbol("f.arg0"), vreg(0))]
    assert not _has_spill_code(code, "f")


def test_global_scalars_do_not_count():
    code = [iloc.ldm(Symbol("g", "global"), vreg(0))]
    assert not _has_spill_code(code, "f")


def test_other_functions_slots_do_not_count():
    code = [iloc.ldm(Symbol("other.%v3"), vreg(0))]
    assert not _has_spill_code(code, "f")


def test_clean_code():
    code = [iloc.loadi(1, vreg(0)), iloc.copy(vreg(0), vreg(1))]
    assert not _has_spill_code(code, "f")
