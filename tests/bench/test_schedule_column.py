"""`table1 --schedule`: the list scheduler on the measurement path.

The RAP column runs the validated schedule stage; the footer reports the
static (latency-model) length delta.  Executed cycle counts must be
schedule-invariant — the scheduler emits a verified permutation of each
block and the interpreter charges one cycle per instruction — so the
table body is byte-identical with scheduling on or off.
"""

import io

from repro.bench.harness import Harness, build_table1
from repro.bench.suite import program
from repro.bench.table1 import main as table1_main
from repro.bench.table1 import render_schedule_footer, render_table1
from repro.resilience.telemetry import aggregate


def _table_text(schedule: bool) -> str:
    harness = Harness([program("sieve")])
    table = build_table1(
        harness,
        k_values=(3,),
        rap_kwargs={"schedule": True} if schedule else None,
    )
    stream = io.StringIO()
    render_table1(table, stream)
    return stream.getvalue()


class TestScheduleColumn:
    def test_table_body_is_schedule_invariant(self):
        assert _table_text(schedule=False) == _table_text(schedule=True)

    def test_schedule_metrics_flow_into_runs(self):
        harness = Harness([program("sieve")])
        runs = []
        build_table1(
            harness,
            k_values=(3,),
            rap_kwargs={"schedule": True},
            runs_out=runs,
        )
        total = aggregate(run.metrics for run in runs).stages["schedule"]
        assert total.calls >= 1  # stage actually ran (and was timed)
        assert total.sched_blocks > 0
        assert total.sched_length_after <= total.sched_length_before
        # Only the RAP column schedules; GRA runs must not carry the stage.
        for run in runs:
            if run.allocator == "gra" and not run.fallbacks_taken:
                assert "schedule" not in run.metrics

    def test_footer_reports_static_delta(self):
        harness = Harness([program("sieve")])
        runs = []
        build_table1(
            harness, k_values=(3,), rap_kwargs={"schedule": True},
            runs_out=runs,
        )
        stream = io.StringIO()
        render_schedule_footer(runs, stream)
        text = stream.getvalue()
        assert "[schedule] RAP column list-scheduled" in text
        assert "model cycles" in text and "blocks" in text

    def test_footer_without_scheduling_says_so(self):
        harness = Harness([program("sieve")])
        runs = []
        build_table1(harness, k_values=(3,), runs_out=runs)
        stream = io.StringIO()
        render_schedule_footer(runs, stream)
        assert "no blocks were scheduled" in stream.getvalue()

    def test_cli_flag_end_to_end(self, capsys):
        assert table1_main(["--k", "3", "--programs", "sieve", "--schedule"]) == 0
        out = capsys.readouterr().out
        assert "[schedule] RAP column list-scheduled" in out
