"""Tests for the k-sweep report."""

import io

from repro.bench.sweep import render, sweep


def test_sweep_shape_and_monotonicity():
    curves = sweep(["hanoi"], (3, 5, 8))
    rows = curves["hanoi"]
    assert [k for k, _, _, _ in rows] == [3, 5, 8]
    gra = [g for _, g, _, _ in rows]
    rap = [r for _, _, r, _ in rows]
    ssa = [s for _, _, _, s in rows]
    # More registers never cost cycles for any allocator.
    assert gra == sorted(gra, reverse=True)
    assert rap == sorted(rap, reverse=True)
    assert ssa == sorted(ssa, reverse=True)


def test_render_marks_flat_tail():
    curves = {
        "x": [
            (3, 100, 90, 95),
            (4, 80, 70, 75),
            (5, 80, 70, 75),
            (6, 80, 70, 75),
        ]
    }
    stream = io.StringIO()
    render(curves, stream=stream)
    text = stream.getvalue()
    assert "== x ==" in text
    assert text.count("<- flat") == 2  # k=4 and k=5 (k=6 has no successors)


def test_render_includes_gain_columns():
    curves = {"x": [(3, 200, 150, 160)]}
    stream = io.StringIO()
    render(curves, stream=stream)
    text = stream.getvalue()
    assert "+25.0%" in text  # RAP vs GRA
    assert "+20.0%" in text  # SSA vs GRA
