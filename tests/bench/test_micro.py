"""The three-tier interpreter microbenchmark harness."""

import io
import json

from repro.bench.micro import main, run_micro


class TestRunMicro:
    def test_report_shape_and_equivalence(self):
        stream = io.StringIO()
        report = run_micro(["queens"], repeat=1, stream=stream)
        assert [row["program"] for row in report["programs"]] == ["queens"]
        row = report["programs"][0]
        assert row["instructions"] > 0
        assert set(row["seconds"]) == {"slow", "fast", "compiled"}
        assert set(report["minstr_per_s"]) == {"slow", "fast", "compiled"}
        assert set(report["speedup"]) == {
            "compiled_vs_slow",
            "compiled_vs_fast",
            "fast_vs_slow",
        }
        for value in report["speedup"].values():
            assert value > 0
        rendered = stream.getvalue()
        assert "queens" in rendered
        assert "comp Mi/s" in rendered

    def test_json_flag_writes_report(self, tmp_path, capsys):
        out = tmp_path / "micro.json"
        assert main(["--programs", "queens", "--json", str(out)]) == 0
        capsys.readouterr()
        report = json.loads(out.read_text())
        assert report["programs"][0]["program"] == "queens"
        assert json.dumps(report)  # round-trips
