"""Tests for the measurement harness and Table-1 assembly."""

import pytest

from repro.bench.harness import (
    Harness,
    RoutineResult,
    Table1,
    Table1Cell,
    _make_cell,
    build_table1,
)
from repro.bench.suite import program
from repro.interp.stats import Counters


@pytest.fixture(scope="module")
def harness():
    return Harness()


class TestCellMath:
    def make(self, gc, rc, gl=0, rl=0, gs=0, rs=0, spill=True):
        gra = RoutineResult(Counters(cycles=gc, loads=gl, stores=gs), spill)
        rap = RoutineResult(Counters(cycles=rc, loads=rl, stores=rs), spill)
        return _make_cell(gra, rap)

    def test_tot_is_percentage_decrease(self):
        cell = self.make(200, 180)
        assert cell.tot == pytest.approx(10.0)

    def test_rap_slower_gives_negative(self):
        cell = self.make(100, 120)
        assert cell.tot == pytest.approx(-20.0)

    def test_ld_st_portions(self):
        # 100 GRA cycles; RAP saves 5 loads and 2 stores -> ld 5%, st 2%.
        cell = self.make(100, 90, gl=20, rl=15, gs=10, rs=8)
        assert cell.ld == pytest.approx(5.0)
        assert cell.st == pytest.approx(2.0)

    def test_blank_when_no_spill_code(self):
        cell = self.make(100, 100, spill=False)
        assert cell.blank

    def test_zero_cycles_handled(self):
        cell = self.make(0, 0)
        assert cell.tot is None and cell.blank


class TestTable1Aggregation:
    def build_fake(self):
        table = Table1((3, 5))
        table.routine_order = ["a", "b"]
        table.cells = {
            "a": {3: Table1Cell(10.0, 0, 0), 5: Table1Cell(20.0, 0, 0)},
            "b": {3: Table1Cell(-10.0, 0, 0), 5: Table1Cell(None, None, None, blank=True)},
        }
        return table

    def test_average_skips_blank(self):
        table = self.build_fake()
        assert table.average(3) == pytest.approx(0.0)
        assert table.average(5) == pytest.approx(20.0)

    def test_overall_average(self):
        table = self.build_fake()
        assert table.overall_average() == pytest.approx(10.0)


class TestHarnessEndToEnd:
    def test_single_program_table(self, harness):
        small = Harness([program("hanoi"), program("perm")])
        table = build_table1(small, k_values=(3,))
        assert set(table.routine_order) == {
            "hanoi", "permute", "swap", "initialize", "perm"
        }
        for routine in table.routine_order:
            assert 3 in table.cells[routine]

    def test_compilation_is_cached(self, harness):
        bench = program("hanoi")
        first = harness.compiled(bench)
        second = harness.compiled(bench)
        assert first is second

    def test_output_check_catches_divergence(self, harness):
        # Sanity: reference output exists and is stable.
        bench = program("hanoi")
        assert harness.reference_output(bench) == [511]

    def test_unknown_allocator_rejected(self, harness):
        with pytest.raises(ValueError):
            harness.run(program("hanoi"), "magic", 3)

    def test_render_smoke(self, capsys):
        from repro.bench.table1 import render_table1

        small = Harness([program("hanoi")])
        table = build_table1(small, k_values=(3,))
        render_table1(table)
        out = capsys.readouterr().out
        assert "hanoi" in out and "Average" in out
