"""Smoke tests for the ablation report module."""

import io

from repro.bench.ablations import report


def test_report_renders_all_sections():
    stream = io.StringIO()
    report(["hanoi"], k=3, stream=stream)
    text = stream.getvalue()
    assert "== hanoi ==" in text
    for label in (
        "GRA baseline",
        "RAP (all phases)",
        "RAP, no peephole",
        "RAP, no motion",
        "RAP, global peephole",
        "RAP, rematerialization",
        "GRA + coalescing",
        "GRA, Chaitin coloring",
        "RAP, merged regions",
    ):
        assert label in text, label


def test_report_numbers_are_sane():
    stream = io.StringIO()
    report(["hanoi"], k=5, stream=stream)
    lines = [l for l in stream.getvalue().splitlines() if "cycles=" in l]
    cycles = [int(l.split("cycles=")[1].split()[0]) for l in lines]
    assert all(c > 0 for c in cycles)
    # All configurations compute the same function; cycle counts stay in
    # the same ballpark (within 3x of each other).
    assert max(cycles) < 3 * min(cycles)
