"""Differential and semantic tests for the extended (non-Table-1) suite."""

import pytest

from repro.bench.harness import Harness
from repro.bench.suite import EXTRA_PROGRAMS, PROGRAMS, program
from repro.compiler import compile_source
from repro.interp.machine import run_program


@pytest.fixture(scope="module")
def harness():
    return Harness()


class TestRegistry:
    def test_extended_programs_not_in_table1(self):
        table1_names = {bench.name for bench in PROGRAMS}
        for bench in EXTRA_PROGRAMS:
            assert bench.name not in table1_names

    def test_lookup_finds_extended(self):
        assert program("bubble").group == "Extended"


class TestSemantics:
    def run(self, name):
        bench = program(name)
        prog = compile_source(bench.source())
        return run_program(prog.reference_image(), max_cycles=bench.max_cycles)

    def test_bubble_sorts(self):
        out = self.run("bubble").output
        assert out[0] == 1 and out[1] <= out[2]

    def test_quicksort_sorts(self):
        out = self.run("quicksort").output
        assert out[0] == 1 and out[1] <= out[2]

    def test_ackermann_values(self):
        # ack(2,4) = 11, ack(3,3) = 61.
        assert self.run("ackermann").output == [11, 61]

    def test_matmul_variants_agree(self):
        out = self.run("matmul").output
        assert out[1] == 0.0  # unrolled == naive


class TestDifferential:
    @pytest.mark.parametrize("bench", EXTRA_PROGRAMS, ids=lambda b: b.name)
    @pytest.mark.parametrize("allocator", ["gra", "rap"])
    def test_allocated_matches_reference(self, harness, bench, allocator):
        harness.run(bench, allocator, 3)
        harness.run(bench, allocator, 6)
