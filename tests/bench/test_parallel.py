"""Tier-1 tests for the parallel sweep path (`bench/parallel.py`).

The contract under test: a `--jobs N` sweep is *indistinguishable* from
a serial one except in wall time — byte-identical table text, identical
fallback degradation when a fault is armed, and the same first-failure
diagnostic when a cell dies with the ladder disabled.

Kept to the two cheapest programs (hanoi ~0.2s, sieve ~1s per k) so the
pool startup, not the cells, dominates the cost of this module.
"""

import io

from repro.bench.harness import Harness, build_table1
from repro.bench.parallel import CellSpec, cells_for, run_cells
from repro.bench.suite import program
from repro.bench.sweep import sweep
from repro.bench.table1 import render_table1
from repro.resilience import faults
from repro.resilience.errors import StageError

SUBSET = ("hanoi", "sieve")
K_VALUES = (3, 5)


def _programs():
    return [program(name) for name in SUBSET]


def _render(table) -> str:
    stream = io.StringIO()
    render_table1(table, stream)
    return stream.getvalue()


def test_jobs4_table_text_identical_to_serial():
    serial = build_table1(Harness(_programs()), k_values=K_VALUES)
    parallel = build_table1(Harness(_programs()), k_values=K_VALUES, jobs=4)
    assert _render(parallel) == _render(serial)


def test_parallel_runs_out_in_serial_order_with_metrics():
    runs = []
    build_table1(Harness(_programs()), k_values=(3,), jobs=2, runs_out=runs)
    assert [(r.program, r.allocator, r.k) for r in runs] == [
        ("hanoi", "gra", 3),
        ("hanoi", "rap", 3),
        ("hanoi", "ssaspill", 3),
        ("sieve", "gra", 3),
        ("sieve", "rap", 3),
        ("sieve", "ssaspill", 3),
    ]
    for run in runs:
        assert run.wall_time > 0.0
        assert "allocate" in run.metrics
        assert run.metrics["allocate"].rounds >= 1


def test_armed_fault_degrades_only_its_cells():
    # times=None: occurrence counters are per worker process, so an
    # every-time spec is the one shape whose firings are independent of
    # how cells land on workers.
    spec = faults.FaultSpec("rap.region.raise", function="hanoi", times=None)
    with faults.injected(spec):
        serial = build_table1(Harness(_programs()), k_values=K_VALUES)
    with faults.injected(spec):
        parallel = build_table1(
            Harness(_programs()), k_values=K_VALUES, jobs=2
        )
    # Only the faulted program's cells are degraded, each by exactly the
    # rap rung, at every k ...
    degraded = {(routine, k) for routine, k, _ in parallel.degraded_cells()}
    assert degraded == {("hanoi", k) for k in K_VALUES}
    for _, _, events in parallel.degraded_cells():
        assert [event.allocator for event in events] == ["rap"]
        assert events[0].stage == "allocate"
    for k in K_VALUES:
        assert parallel.cells["sieve"][k].fallbacks == []
    # ... and the degradation is identical to the serial run's, down to
    # the rendered text (including the degraded-cells footer).
    assert _render(parallel) == _render(serial)


def test_gra_knockout_completes_on_ssaspill():
    # With GRA knocked out by injection, every gra cell completes on the
    # SSA spill-then-color rung (untouched by the probe) — one rung
    # down, not at the bottom — the footer names the rung, and the
    # degraded table is still byte-identical across serial/--jobs.
    spec = faults.FaultSpec("gra.spill.corrupt-slot", times=None)
    with faults.injected(spec):
        serial = build_table1(Harness(_programs()), k_values=K_VALUES)
    with faults.injected(spec):
        parallel = build_table1(
            Harness(_programs()), k_values=K_VALUES, jobs=2
        )
    for routine in serial.routine_order:
        for k in K_VALUES:
            cell = serial.cells[routine][k]
            assert cell.used["gra"] == "ssaspill"
            assert cell.used["rap"] == "rap"
            assert cell.used["ssaspill"] == "ssaspill"
    text = _render(serial)
    assert "completed on gra->ssaspill" in text
    assert "spillall" not in text
    assert _render(parallel) == text


def test_ssaspill_knockout_completes_on_linearscan():
    # Knocking out SSA construction sends the ssaspill cells to the
    # linear-scan rung, leaving the gra and rap columns untouched.  The
    # probe needs a shadowed definition to corrupt, so the assertion
    # pins sieve (which has redefinitions in every function); hanoi's
    # cells simply stay healthy.
    spec = faults.FaultSpec("ssa.rename.stale-def", times=None)
    with faults.injected(spec):
        serial = build_table1(Harness(_programs()), k_values=K_VALUES)
    with faults.injected(spec):
        parallel = build_table1(
            Harness(_programs()), k_values=K_VALUES, jobs=2
        )
    for k in K_VALUES:
        cell = serial.cells["sieve"][k]
        assert cell.used["ssaspill"] == "linearscan"
        assert cell.used["gra"] == "gra"
        assert cell.used["rap"] == "rap"
    text = _render(serial)
    assert "completed on ssaspill->linearscan" in text
    assert _render(parallel) == text


def test_ladder_escaping_error_rethaws_in_parent():
    spec = faults.FaultSpec("rap.region.raise", function="hanoi", times=None)
    with faults.injected(spec):
        try:
            run_cells(
                cells_for(["hanoi"], [3], ["rap"]),
                jobs=2,
                harness=Harness(fallback=False),
            )
        except StageError as err:
            assert err.stage == "allocate"
            assert err.context.allocator == "rap"
            assert err.context.program == "hanoi"
            assert "rap.region.raise" in err.message
        else:
            raise AssertionError("frozen StageError should have re-raised")


def test_sweep_jobs_matches_serial():
    serial = sweep(["hanoi"], K_VALUES)
    parallel = sweep(["hanoi"], K_VALUES, jobs=2)
    assert parallel == serial


def test_cell_spec_enumeration_order():
    specs = cells_for(["a", "b"], [3, 5])
    assert [spec.key for spec in specs] == [
        ("a", "gra", 3),
        ("a", "rap", 3),
        ("a", "gra", 5),
        ("a", "rap", 5),
        ("b", "gra", 3),
        ("b", "rap", 3),
        ("b", "gra", 5),
        ("b", "rap", 5),
    ]
    assert specs[0] == CellSpec("a", "gra", 3)
