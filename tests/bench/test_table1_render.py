"""Tests for Table-1 text rendering (the paper's formatting quirks)."""

import io

from repro.bench.harness import Table1, Table1Cell
from repro.bench.table1 import _fmt, render_table1


class TestFormatting:
    def test_blank_cells_render_empty(self):
        assert _fmt(5.0, blank=True).strip() == ""
        assert _fmt(None, blank=False).strip() == ""

    def test_exact_zero(self):
        assert _fmt(0.0, blank=False).strip() == "0.0"

    def test_tiny_values_get_signed_zero(self):
        # The paper: "-0.0 entries indicate a very small negative
        # percentage; +0.0 ... very small positive".
        assert _fmt(0.01, blank=False).strip() == "+0.0"
        assert _fmt(-0.02, blank=False).strip() == "-0.0"

    def test_normal_values_one_decimal(self):
        assert _fmt(12.34, blank=False).strip() == "12.3"
        assert _fmt(-3.21, blank=False).strip() == "-3.2"


class TestRender:
    def make_table(self):
        table = Table1((3, 9))
        table.routine_order = ["alpha", "beta"]
        table.cells = {
            "alpha": {
                3: Table1Cell(10.0, 5.0, 1.0, ssa=8.0, ssa_blank=False),
                9: Table1Cell(None, None, None, blank=True),
            },
            "beta": {
                3: Table1Cell(-2.5, -1.0, 0.0, ssa=-3.0, ssa_blank=False),
                9: Table1Cell(4.0, 0.0, 0.0),
            },
        }
        return table

    def test_all_rows_and_averages(self):
        stream = io.StringIO()
        render_table1(self.make_table(), stream=stream)
        text = stream.getvalue()
        assert "alpha" in text and "beta" in text
        assert "Average" in text
        assert "paper: 2.7%" in text
        assert "ssaspill (SSA spill-then-color)" in text

    def test_header_has_ssa_subcolumn_per_k(self):
        stream = io.StringIO()
        render_table1(self.make_table(), stream=stream)
        header = stream.getvalue().splitlines()[0]
        assert header.count("ssa") == 2  # one per k group

    def test_averages_skip_blanks(self):
        table = self.make_table()
        assert table.average(3) == (10.0 - 2.5) / 2
        assert table.average(9) == 4.0

    def test_ssa_averages_skip_valueless_cells(self):
        table = self.make_table()
        assert table.ssa_average(3) == (8.0 - 3.0) / 2
        assert table.ssa_average(9) == 0.0

    def test_missing_cell_renders_gap(self):
        table = self.make_table()
        del table.cells["alpha"][9]
        stream = io.StringIO()
        render_table1(table, stream=stream)
        assert "alpha" in stream.getvalue()
