"""Tests for the benchmark registry."""

import pytest

from repro.bench.suite import PROGRAMS, all_routines, program
from repro.compiler import compile_source
from repro.frontend.parser import parse
from repro.frontend.sema import analyze


class TestRegistry:
    def test_exactly_37_routine_rows(self):
        # Table 1 of the paper reports 37 routines.
        assert len(all_routines()) == 37

    def test_expected_groups_present(self):
        groups = {bench.group for bench in PROGRAMS}
        assert {"Livermore", "cLinpack", "Stanford", "Hanoi"} <= groups

    def test_stanford_routine_names_match_paper(self):
        rows = set(all_routines())
        for name in (
            "initmatrix", "innerproduct", "intmm",
            "permute", "swap", "initialize", "perm",
            "fit", "place", "trial", "remove", "puzzle",
            "queens", "try", "doit",
        ):
            assert name in rows

    def test_program_lookup(self):
        assert program("sieve").name == "sieve"
        with pytest.raises(KeyError):
            program("nope")

    def test_rollup_default_is_identity(self):
        bench = program("hanoi")
        assert bench.functions_for("hanoi") == ["hanoi"]

    def test_hsort_rollup_includes_sift(self):
        bench = program("hsort")
        assert set(bench.functions_for("hsort")) == {"hsort", "sift"}


class TestSources:
    @pytest.mark.parametrize("bench", PROGRAMS, ids=lambda b: b.name)
    def test_sources_parse_and_typecheck(self, bench):
        analyze(parse(bench.source(), bench.filename))

    @pytest.mark.parametrize("bench", PROGRAMS, ids=lambda b: b.name)
    def test_routines_exist_as_functions(self, bench):
        module = compile_source(bench.source()).module
        for routine in bench.routines:
            for func in bench.functions_for(routine):
                assert func in module.functions

    @pytest.mark.parametrize("bench", PROGRAMS, ids=lambda b: b.name)
    def test_main_present(self, bench):
        module = compile_source(bench.source()).module
        assert "main" in module.functions
