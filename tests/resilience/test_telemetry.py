"""Tests for the per-stage telemetry layer (`resilience/telemetry.py`)."""

import io

from repro.bench.harness import Harness
from repro.bench.suite import program
from repro.resilience.errors import MiscompileError, StageContext, StageError
from repro.resilience.pipeline import PassPipeline, PipelineConfig
from repro.resilience.telemetry import (
    MetricsCollector,
    StageMetrics,
    aggregate,
    render_profile,
)

#: Enough same-time-live products to force spills at k=3.
PRESSURED = """
int f(int a, int b, int c, int d) {
    int e; int g; int h;
    e = a * b; g = c * d; h = a * d;
    return e + g + h + a + b + c + d;
}
void main() { print(f(2, 3, 5, 7)); }
"""


def test_pipeline_records_every_stage():
    collector = MetricsCollector()
    pipe = PassPipeline(PipelineConfig(), metrics=collector)
    prog = pipe.compile(PRESSURED)
    module = prog.fresh_module()
    for func in module.functions.values():
        pipe.allocate(func, "gra", 3)
    stages = collector.stages
    for stage in ("parse", "sema", "pdg-build", "allocate", "validate"):
        assert stage in stages, stage
        assert stages[stage].calls >= 1
        assert stages[stage].wall_time >= 0.0
    # one round minimum per function, and f must spill at k=3
    assert stages["allocate"].calls == 2
    assert stages["allocate"].rounds >= 3
    assert stages["allocate"].spills >= 1


def test_allocation_telemetry_accessor():
    pipe = PassPipeline()
    prog = pipe.compile(PRESSURED)
    module = prog.fresh_module()
    func = module.functions["f"]
    result = pipe.allocate(func, "rap", 3)
    counters = result.telemetry()
    assert counters["rounds"] == result.rounds
    assert counters["spills"] == len(result.spilled)
    assert counters["peephole_hits"] == result.peephole.total


def test_failed_stage_still_timed():
    collector = MetricsCollector()
    pipe = PassPipeline(PipelineConfig(), metrics=collector)
    try:
        pipe.compile("void main() { int ; }")
    except StageError:
        pass
    assert collector.stages["parse"].calls == 1


def test_harness_threads_metrics_into_program_run():
    harness = Harness()
    run = harness.run(program("hanoi"), "rap", 3)
    assert run.wall_time > 0.0
    for stage in ("parse", "allocate", "validate", "execute", "compare"):
        assert stage in run.metrics, stage
    assert run.metrics["allocate"].rounds >= 1
    # The compile cache makes front-end stages a first-run-only cost.
    second = harness.run(program("hanoi"), "gra", 3)
    assert "parse" not in second.metrics
    assert "execute" in second.metrics


def test_aggregate_folds_stage_maps():
    a = {"allocate": StageMetrics("allocate", wall_time=1.0, calls=2, rounds=3)}
    b = {
        "allocate": StageMetrics("allocate", wall_time=0.5, calls=1, spills=4),
        "execute": StageMetrics("execute", wall_time=2.0, calls=1),
    }
    total = aggregate([a, b])
    assert total.stages["allocate"].wall_time == 1.5
    assert total.stages["allocate"].calls == 3
    assert total.stages["allocate"].rounds == 3
    assert total.stages["allocate"].spills == 4
    assert total.stages["execute"].calls == 1
    # canonical order: allocate before execute, extras after
    assert [m.stage for m in total.ordered()] == ["allocate", "execute"]


def test_render_profile_table_has_every_column():
    collector = aggregate(
        [{"allocate": StageMetrics("allocate", 0.25, 2, 5, 1, 7)}]
    )
    stream = io.StringIO()
    render_profile(collector, stream, title="T:")
    text = stream.getvalue()
    assert "T:" in text
    for column in ("stage", "wall(s)", "calls", "rounds", "spills", "peephole"):
        assert column in text
    assert "allocate" in text and "0.250" in text


def test_stage_error_freeze_thaw_roundtrip():
    context = StageContext(
        stage="allocate", program="sieve", function="sieve", allocator="rap",
        k=5, extra={"probe": "rap.region.raise"},
    )
    err = StageError("boom", context, ValueError("root"))
    thawed = StageError.thaw(err.freeze())
    assert type(thawed) is StageError
    assert thawed.message == "boom"
    assert thawed.context.as_dict() == context.as_dict()
    assert "ValueError: root" in str(thawed.cause)
    assert thawed.render().splitlines()[0] == err.render().splitlines()[0]


def test_miscompile_freeze_thaw_roundtrip():
    context = StageContext(stage="compare", program="sieve", allocator="gra", k=3)
    err = MiscompileError("diverged", context, 2, [1, 2, 3], [1, 2, 4])
    thawed = StageError.thaw(err.freeze())
    assert isinstance(thawed, MiscompileError)
    assert thawed.divergence_index == 2
    assert thawed.expected == [1, 2, 3]
    assert thawed.actual == [1, 2, 4]
    assert thawed.render() == err.render()


def test_execute_tier_census_records_merges_and_renders():
    a = MetricsCollector()
    a.record_execute_tier("compiled")
    a.record_execute_tier("compiled")
    a.record_execute_tier("slow")
    b = MetricsCollector()
    b.record_execute_tier("compiled")
    total = aggregate([a.stages, b.stages])
    assert total.stages["execute"].tiers == {"compiled": 3, "slow": 1}
    assert total.as_dict()["execute"]["tiers"] == {"compiled": 3, "slow": 1}
    # Stages with no executed runs carry no tiers key.
    assert "tiers" not in StageMetrics("allocate").as_dict()


def test_pipeline_execute_records_tier_and_pycompile_split():
    collector = MetricsCollector()
    pipe = PassPipeline(PipelineConfig(), metrics=collector)
    prog = pipe.compile(PRESSURED)
    pipe.execute(prog.reference_image())
    stages = collector.stages
    # Default tier is the compiled one; its translation time is broken
    # out of the execute wall time like the decode stage's.
    assert stages["execute"].tiers == {"compiled": 1}
    assert "pycompile" in stages
    assert stages["pycompile"].wall_time > 0.0


def test_pipeline_execute_census_counts_demoted_runs():
    from repro.resilience import faults

    collector = MetricsCollector()
    pipe = PassPipeline(PipelineConfig(), metrics=collector)
    prog = pipe.compile(PRESSURED)
    with faults.injected(faults.FaultSpec("rap.region.raise", "nope")):
        pipe.execute(prog.reference_image())
    assert collector.stages["execute"].tiers == {"slow": 1}
