"""The transformation validators: each phase probe is caught by *its*
validator as a structured error before execution, and switching that
validator off lets the same probe reach execution as a miscompile.

The witness programs are fuzzer-found (``repro.testing.generator``) and
delta-minimized with ``minimize_source`` under the predicate "the armed
probe miscompiles with the validator off AND is caught at the expected
stage with it on" — so each one is guaranteed to exercise both sides.
"""

import pytest

from repro.bench.harness import Harness
from repro.bench.parallel import CellSpec, run_cells
from repro.ir.iloc import Instr, Op, Symbol, ldm, preg
from repro.resilience import faults
from repro.resilience.errors import (
    ChordalValidationError,
    DestructValidationError,
    MotionValidationError,
    PeepholeValidationError,
    ScheduleValidationError,
    SSAValidationError,
    StageContext,
    StageError,
)
from repro.resilience.faults import FaultSpec
from repro.resilience.pipeline import PassPipeline, PipelineConfig
from repro.resilience.triage import probe_failure
from repro.resilience.validators import validate_peephole, validate_schedule

#: A loop that writes a spilled variable (``p2``) which is printed after
#: the loop: RAP at k=4 hoists the slot with a trailing store, so dropping
#: that store (or preloading the wrong register) changes the output.
SPILLED_LOOP_WITNESS = """
int f1(float p2, int p3, int p4) {
    int i5;
    for (i5 = 0; i5 < 5; i5 = i5 + 1) {
        p2 = p4;
    }
    if ((p3 < p4) || ((-p3) < p2)) {
        int i6;
        for (i6 = 0; i6 < 1; i6 = i6 + 1) {
        }
    }
    print(p2);
    print(p3);
    return (-2 + p4);
}
void main() {
    if (-3 < 2) {
    }
    print(f1((0.6 - ((3.6 * -8.2) - (5.4 - 4.0))), 1, (((-1) * 7) + 1)));
}
"""

#: A global read twice in one printed expression: at k=3 the two reads
#: share spill traffic inside one block, so a stale holder entry rewrites
#: a live load, and an adjacent-dependent swap reorders the uses.
GLOBAL_EXPR_WITNESS = """
float ga1[8];
int g2 = 9;
float f3(int p4, float p5) {
}
void main() {
    print(((g2 % 7) + (-(g2 - -3))));
}
"""

#: Register pressure with a redefinition (``a``): SSA renaming maintains
#: a two-deep stack for ``a``'s origin, so the stale-def probe has a
#: shadowed definition to resolve to, and MAXLIVE > 3 makes the chordal
#: coloring non-trivial for the clash probe.
REDEF_PRESSURE_WITNESS = """
int f(int a, int b, int c, int d) {
    int e; int g; int h;
    e = a * b; g = c * d; h = a * d;
    a = e + g;
    return e + g + h + a + b + c + d;
}
void main() { print(f(2, 3, 5, 7)); }
"""

#: The textbook swap loop: the loop header's phis permute ``a`` and
#: ``b``, so out-of-SSA destruction must break a parallel-copy cycle on
#: the back edge — exactly the move the lost-copy probe corrupts.  k=4
#: keeps both values in registers so the cycle survives to the
#: location level.
SWAP_LOOP_WITNESS = """
void main() {
    int a; int b; int t; int i;
    a = 1; b = 100;
    for (i = 0; i < 6; i = i + 1) {
        t = a; a = b; b = t;
        print(a + 2 * b);
    }
    print(a); print(b);
}
"""

#: The generic assignment recheck is defense in depth over the SSA
#: validators: it catches a corrupted copy window / coloring before the
#: specialized validator runs.  The ON configs for the destruct and
#: chordal probes switch it off so each probe demonstrably lands in
#: *its own* validator (the documented purpose of the verify_* flags);
#: the OFF configs additionally drop verify_ssa so the corruption
#: reaches execution as a miscompile.
_NO_ASSIGN = PipelineConfig(verify_assignment=False)
_SSA_OFF = PipelineConfig(verify_ssa=False)
_SSA_AND_ASSIGN_OFF = PipelineConfig(
    verify_ssa=False, verify_assignment=False
)

#: probe -> (source, allocator, k, error class, config with the matching
#: validator OFF, config for the validators-ON run or None for defaults).
SCENARIOS = {
    "ssa.rename.stale-def": (
        REDEF_PRESSURE_WITNESS, "ssaspill", 3, SSAValidationError,
        _SSA_OFF, None,
    ),
    "ssa.destruct.lost-copy": (
        SWAP_LOOP_WITNESS, "ssaspill", 4, DestructValidationError,
        _SSA_AND_ASSIGN_OFF, _NO_ASSIGN,
    ),
    "ssaspill.color.clash": (
        REDEF_PRESSURE_WITNESS, "ssaspill", 3, ChordalValidationError,
        _SSA_AND_ASSIGN_OFF, _NO_ASSIGN,
    ),
    "rap.motion.drop-store": (
        SPILLED_LOOP_WITNESS, "rap", 4, MotionValidationError,
        PipelineConfig(verify_motion=False), None,
    ),
    "rap.motion.wrong-reg": (
        SPILLED_LOOP_WITNESS, "rap", 4, MotionValidationError,
        PipelineConfig(verify_motion=False), None,
    ),
    "rap.peephole.stale-holder": (
        GLOBAL_EXPR_WITNESS, "rap", 3, PeepholeValidationError,
        PipelineConfig(verify_peephole=False), None,
    ),
    "sched.reorder-dependent": (
        GLOBAL_EXPR_WITNESS, "gra", 3, ScheduleValidationError,
        PipelineConfig(schedule=True, verify_schedule=False),
        PipelineConfig(schedule=True),
    ),
}


def allocate_module(source, allocator, k, config=None):
    pipe = PassPipeline(config)
    prog = pipe.compile(source)
    module = prog.fresh_module()
    for func in module.functions.values():
        pipe.allocate(func, allocator, k)


class TestProbeCaughtByItsValidator:
    """With validators on, every phase probe surfaces as that phase's
    error class — at the validate/schedule stage, never at execution."""

    @pytest.mark.parametrize("point", sorted(SCENARIOS))
    def test_caught_with_structured_context(self, point):
        source, allocator, k, err_cls, _off, on_cfg = SCENARIOS[point]
        with faults.injected(FaultSpec(point, times=None)) as plan:
            with pytest.raises(err_cls) as info:
                allocate_module(source, allocator, k, config=on_cfg)
            assert plan.fired, f"probe {point} never fired"
        error = info.value
        assert error.stage in ("validate", "schedule")
        assert error.context.allocator == allocator
        assert error.context.k == k
        assert error.context.function is not None

    @pytest.mark.parametrize("point", sorted(SCENARIOS))
    def test_probe_failure_reports_pre_execution_stage(self, point):
        source, allocator, k, _cls, _off, on_cfg = SCENARIOS[point]
        failure = probe_failure(
            source, allocator, k,
            config=on_cfg, inject=[FaultSpec(point, times=None)],
        )
        assert failure is not None
        assert failure.kind == "crash"
        assert failure.stage in ("validate", "schedule")


class TestValidatorOffReproducesMiscompile:
    """The same probes, with only the matching validator disabled, sail
    through the pipeline and diverge at output comparison — proof the
    validators are load-bearing, not redundant with existing checks."""

    @pytest.mark.parametrize("point", sorted(SCENARIOS))
    def test_miscompile_without_validator(self, point):
        source, allocator, k, _cls, off_cfg, _on = SCENARIOS[point]
        failure = probe_failure(
            source, allocator, k,
            config=off_cfg, inject=[FaultSpec(point, times=None)],
        )
        assert failure is not None
        assert failure.kind == "miscompile"
        assert failure.expected != failure.actual


class TestScheduleValidatorUnits:
    """Hand-built blocks: the schedule validator re-derives dependence
    pairs from instruction structure, independent of the scheduler."""

    def ctx(self):
        return StageContext(stage="schedule", function="unit")

    def block(self):
        r0, r1, r2 = preg(0), preg(1), preg(2)
        return [
            Instr(Op.LOADI, dst=r0, imm=2),
            Instr(Op.LOADI, dst=r1, imm=3),
            Instr(Op.ADD, srcs=[r0, r1], dst=r2),
            Instr(Op.PRINT, srcs=[r2]),
        ]

    def test_identity_order_accepted(self):
        code = self.block()
        validate_schedule(code, list(code), self.ctx())

    def test_independent_swap_accepted(self):
        code = self.block()
        # The two loads are independent; swapping them is a legal order.
        validate_schedule(code, [code[1], code[0], code[2], code[3]], self.ctx())

    def test_dependent_swap_rejected(self):
        code = self.block()
        # print uses r2 before the add defines it.
        bad = [code[0], code[1], code[3], code[2]]
        with pytest.raises(ScheduleValidationError):
            validate_schedule(code, bad, self.ctx())

    def test_dropped_instruction_rejected(self):
        code = self.block()
        with pytest.raises(ScheduleValidationError):
            validate_schedule(code, code[:-1], self.ctx())


class TestPeepholeValidatorUnits:
    """Hand-built windows: symbolic execution accepts exactly the sound
    Figure-6 rewrites."""

    def ctx(self):
        return StageContext(stage="validate", function="unit")

    def test_redundant_reload_deletion_accepted(self):
        slot = Symbol("a")
        r0, r1 = preg(0), preg(1)
        before = [
            ldm(slot, r0),
            Instr(Op.ADD, srcs=[r0, r0], dst=r1),
            ldm(slot, r0),  # r0 still mirrors the slot: redundant
        ]
        after = [before[0].clone(), before[1].clone()]
        validate_peephole(before, after, self.ctx())

    def test_live_reload_deletion_rejected(self):
        slot = Symbol("a")
        r0 = preg(0)
        before = [
            ldm(slot, r0),
            Instr(Op.ADD, srcs=[r0, r0], dst=r0),  # r0 redefined
            ldm(slot, r0),  # reload is load-bearing
        ]
        after = [before[0].clone(), before[1].clone()]
        with pytest.raises(PeepholeValidationError):
            validate_peephole(before, after, self.ctx())

    def test_observable_trace_change_rejected(self):
        r0 = preg(0)
        before = [Instr(Op.LOADI, dst=r0, imm=1), Instr(Op.PRINT, srcs=[r0])]
        after = [Instr(Op.LOADI, dst=r0, imm=1)]
        with pytest.raises(PeepholeValidationError):
            validate_peephole(before, after, self.ctx())


class TestFreezeThaw:
    """The validator error classes survive the worker-pool freeze/thaw
    transport as their own types, with context and cause intact."""

    CASES = [
        (MotionValidationError, "motion-validation"),
        (ScheduleValidationError, "schedule-validation"),
        (PeepholeValidationError, "peephole-validation"),
    ]

    @pytest.mark.parametrize("cls,kind", CASES, ids=lambda v: str(v))
    def test_roundtrip(self, cls, kind):
        if isinstance(cls, str):
            pytest.skip("id half of the pair")
        context = StageContext(
            stage="validate", function="f", allocator="rap", k=3,
            extra={"loop": "R7", "slot": "[f.%v1]"},
        )
        error = cls("unsound hoist", context, cause=ValueError("root"))
        payload = error.freeze()
        assert payload["kind"] == kind
        thawed = StageError.thaw(payload)
        assert type(thawed) is cls
        assert thawed.message == "unsound hoist"
        assert thawed.context.as_dict() == context.as_dict()
        assert "ValueError: root" in str(thawed.cause)


class TestPoolRoundTrip:
    """A validator failure raised inside a ``--jobs`` worker reaches the
    parent as the same exception class it would be serially."""

    POOL_CASES = [
        ("rap.motion.wrong-reg", "rap", 4, MotionValidationError, None),
        ("rap.peephole.stale-holder", "rap", 3, PeepholeValidationError, None),
        (
            "sched.reorder-dependent", "gra", 3, ScheduleValidationError,
            PipelineConfig(schedule=True),
        ),
    ]

    @pytest.mark.parametrize("case", POOL_CASES, ids=lambda c: c[0])
    def test_error_class_survives_pool(self, case):
        point, allocator, k, err_cls, config = case
        harness = Harness(fallback=False, pipeline=PassPipeline(config))
        specs = [CellSpec("sieve", allocator, k)]
        with faults.injected(FaultSpec(point, times=None)):
            with pytest.raises(err_cls) as info:
                run_cells(specs, jobs=2, harness=harness)
        assert info.value.stage in ("validate", "schedule")
