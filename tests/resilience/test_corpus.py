"""Fuzz corpus management and failure-signature dedup."""

import io
import json
import os

import pytest

from repro.resilience.corpus import (
    DEFAULT_CORPUS_DIR,
    FEATURES,
    Corpus,
    CorpusEntry,
    consider,
    load_corpus,
    program_features,
    save_corpus,
    seed_corpus,
)
from repro.resilience.faults import FaultSpec
from repro.resilience.fuzz import run_fuzz
from repro.resilience.pipeline import PipelineConfig
from repro.resilience.triage import failure_signature

SPILLY = """
int f(int a, int b, int c, int d) {
    int e; int g; int h;
    e = a * b; g = c * d; h = a * d;
    return e + g + h + a + b + c + d;
}
void main() { print(f(2, 3, 5, 7)); }
"""

TRIVIAL = "void main() { int i; i = 2; print(i + 3); }"

#: Deterministic miscompile: corrupt every GRA spill slot with the check
#: that would catch it switched off (same scenario as test_triage).
MISCOMPILE_CFG = PipelineConfig(verify_spill_discipline=False)
MISCOMPILE_SPEC = FaultSpec("gra.spill.corrupt-slot", times=None)


class TestProgramFeatures:
    def test_spilly_program_spills(self):
        features = program_features(SPILLY)
        assert "gra.spill" in features
        # The same register pressure makes the interval scan spill too.
        assert "linearscan.spill" in features

    def test_trivial_program_has_no_features(self):
        assert program_features(TRIVIAL) == set()

    def test_broken_program_has_no_features(self):
        assert program_features("void main() { int ; }") == set()

    def test_error_axes_require_the_matching_machinery(self):
        # SPILLY peepholes (so the stale-holder probe has a rewrite to
        # corrupt) but hoists nothing (no loops), so the motion error
        # path is unreachable no matter what is armed.
        features = program_features(SPILLY)
        assert "error.peephole" in features
        assert "error.motion" not in features

    def test_committed_medium_entry_reaches_motion_error_path(self):
        corpus = load_corpus(DEFAULT_CORPUS_DIR)
        by_feature = {
            feature: [e.file for e in corpus.entries if feature in e.features]
            for feature in FEATURES
        }
        # Each validator-error path and the linearscan rung have at
        # least one committed witness seed.
        for axis in (
            "linearscan.spill",
            "ssaspill.spill",
            "error.motion",
            "error.schedule",
            "error.peephole",
            "error.ssa-destruct",
        ):
            assert by_feature[axis], axis


class TestCorpusGrowth:
    def test_consider_keeps_only_new_coverage(self, tmp_path):
        corpus = Corpus(str(tmp_path))
        first = consider(corpus, 1, "small", SPILLY)
        assert first is not None
        assert os.path.exists(first.path(str(tmp_path)))
        # Same features again: rejected, nothing written.
        assert consider(corpus, 2, "small", SPILLY) is None
        assert not os.path.exists(os.path.join(str(tmp_path), "seed2.mc"))
        # No features at all: rejected.
        assert consider(corpus, 3, "small", TRIVIAL) is None

    def test_save_load_roundtrip(self, tmp_path):
        corpus = Corpus(str(tmp_path))
        consider(corpus, 1, "small", SPILLY)
        save_corpus(corpus)
        loaded = load_corpus(str(tmp_path))
        assert [e.seed for e in loaded.entries] == [1]
        assert loaded.covered() == corpus.covered()
        assert loaded.sources() == [SPILLY]

    def test_absent_corpus_is_empty(self, tmp_path):
        corpus = load_corpus(str(tmp_path / "nowhere"))
        assert corpus.entries == []
        assert corpus.covered() == set()

    def test_missing_file_skipped_on_load(self, tmp_path):
        corpus = Corpus(str(tmp_path))
        entry = consider(corpus, 1, "small", SPILLY)
        save_corpus(corpus)
        os.remove(entry.path(str(tmp_path)))
        assert load_corpus(str(tmp_path)).entries == []

    def test_seed_corpus_scans_greedily(self, tmp_path):
        # Small seeds alone cannot cover error.motion (no loop-carried
        # write-back in small generated programs); the scan escalates to
        # medium and completes there.
        corpus = seed_corpus(
            str(tmp_path), seeds=range(35), sizes=("small", "medium")
        )
        assert corpus.entries
        assert corpus.covered() == set(FEATURES)
        manifest = json.load(open(os.path.join(str(tmp_path), "MANIFEST.json")))
        assert manifest["features"] == sorted(FEATURES)
        # Greedy minimality: every entry contributed something new.
        seen = set()
        for entry in corpus.entries:
            assert set(entry.features) - seen
            seen |= set(entry.features)


class TestCommittedCorpus:
    """The corpus checked into tests/corpus/ stays healthy and complete."""

    def test_covers_every_feature(self):
        corpus = load_corpus(DEFAULT_CORPUS_DIR)
        assert corpus.entries, "committed corpus is missing"
        assert corpus.covered() == set(FEATURES)

    def test_manifest_matches_reality(self):
        corpus = load_corpus(DEFAULT_CORPUS_DIR)
        for entry in corpus.entries:
            with open(entry.path(corpus.directory)) as handle:
                source = handle.read()
            assert program_features(source) == set(entry.features), entry.file


class TestFuzzCorpusReplay:
    def test_corpus_runs_ahead_of_seed_range(self, tmp_path):
        stream = io.StringIO()
        report = run_fuzz(
            seeds=0,
            out_dir=str(tmp_path),
            stream=stream,
            corpus_dir=DEFAULT_CORPUS_DIR,
        )
        entries = len(load_corpus(DEFAULT_CORPUS_DIR).entries)
        assert report.corpus_entries == entries
        assert report.scenarios == entries * 3 * 2  # allocators x k-values
        assert report.ok, stream.getvalue()
        assert f"{entries} corpus + 0 seeds" in stream.getvalue()

    def test_no_corpus_flag_skips_replay(self, tmp_path):
        report = run_fuzz(
            seeds=0,
            out_dir=str(tmp_path),
            stream=io.StringIO(),
            use_corpus=False,
        )
        assert report.corpus_entries == 0
        assert report.scenarios == 0

    def test_update_corpus_persists_new_seed(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        out_dir = str(tmp_path / "artifacts")
        stream = io.StringIO()
        report = run_fuzz(
            seeds=1,
            start=16,  # known to spill, hoist, and peephole at k=3
            out_dir=out_dir,
            stream=stream,
            corpus_dir=corpus_dir,
            update_corpus=True,
        )
        assert report.ok
        grown = load_corpus(corpus_dir)
        assert [e.seed for e in grown.entries] == [16]
        assert "corpus: persisted seed 16" in stream.getvalue()


class TestSignatureDedup:
    def test_same_signature_merges_into_one_bundle(self, tmp_path):
        # Two corpus entries with the same spilling program: under an
        # armed corrupt-slot probe both fail identically, so the second
        # merges into the first bundle instead of re-minimizing.
        corpus_dir = str(tmp_path / "corpus")
        corpus = Corpus(corpus_dir)
        os.makedirs(corpus_dir)
        for seed in (1, 2):
            path = os.path.join(corpus_dir, f"seed{seed}.mc")
            with open(path, "w") as handle:
                handle.write(SPILLY)
            corpus.entries.append(
                CorpusEntry(seed, "small", ["gra.spill"], f"seed{seed}.mc")
            )
        save_corpus(corpus)

        out_dir = str(tmp_path / "artifacts")
        stream = io.StringIO()
        report = run_fuzz(
            seeds=0,
            allocators=("gra",),
            k_values=(3,),
            out_dir=out_dir,
            stream=stream,
            corpus_dir=corpus_dir,
            config=MISCOMPILE_CFG,
            inject=[MISCOMPILE_SPEC],
            minimize=False,
        )
        assert len(report.failures) == 2
        assert report.distinct_signatures() == 1
        originals = [f for f in report.failures if not f.duplicate]
        duplicates = [f for f in report.failures if f.duplicate]
        assert len(originals) == 1 and len(duplicates) == 1
        assert duplicates[0].bundle_path == originals[0].bundle_path
        assert "duplicate of:" in stream.getvalue()

        # One bundle directory on disk, with both hits and both seeds.
        bundles = sorted(os.listdir(out_dir))
        assert len(bundles) == 1
        signature = failure_signature("miscompile", "compare", None)
        assert bundles[0].endswith(signature)
        meta = json.load(
            open(os.path.join(out_dir, bundles[0], "bundle.json"))
        )
        assert meta["hits"] == 2
        assert meta["seeds"] == [1, 2]
