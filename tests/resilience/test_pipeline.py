"""Tests for the PassPipeline stage runner."""

import pytest

from repro.compiler import param_slots
from repro.frontend.errors import FrontendError
from repro.interp.machine import FunctionImage, ProgramImage
from repro.resilience.errors import MiscompileError, StageError
from repro.resilience.pipeline import STAGES, PassPipeline, PipelineConfig

GOOD = """
int f(int n) {
    int i; int s;
    s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
}
void main() { print(f(10)); }
"""


def allocate_image(pipe, prog, allocator, k):
    module = prog.fresh_module()
    functions = {}
    for name, func in module.functions.items():
        result = pipe.allocate(func, allocator, k)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
    return ProgramImage(list(module.globals.values()), functions)


class TestStages:
    def test_stage_names(self):
        assert STAGES == (
            "parse", "sema", "pdg-build", "allocate", "validate",
            "schedule", "execute",
        )

    @pytest.mark.parametrize(
        "allocator", ["gra", "rap", "linearscan", "spillall"]
    )
    def test_full_pipeline_healthy(self, allocator):
        pipe = PassPipeline()
        prog = pipe.compile(GOOD)
        image = allocate_image(pipe, prog, allocator, 4)
        stats = pipe.execute(image)
        assert stats.output == [45]

    def test_parse_error_wrapped(self):
        pipe = PassPipeline()
        with pytest.raises(StageError) as info:
            pipe.compile("void main() { int ; }")
        assert info.value.stage == "parse"
        assert isinstance(info.value.cause, FrontendError)

    def test_sema_error_wrapped(self):
        pipe = PassPipeline()
        with pytest.raises(StageError) as info:
            pipe.compile("void main() { x = 1; }")
        assert info.value.stage == "sema"

    def test_frontend_unwrapped_when_configured(self):
        pipe = PassPipeline(PipelineConfig(wrap_frontend_errors=False))
        with pytest.raises(FrontendError):
            pipe.compile("void main() { int ; }")

    def test_unknown_allocator_rejected(self):
        pipe = PassPipeline()
        prog = pipe.compile(GOOD)
        func = next(iter(prog.fresh_module().functions.values()))
        with pytest.raises(ValueError):
            pipe.allocate(func, "magic", 4)

    def test_allocate_error_context(self):
        pipe = PassPipeline()
        prog = pipe.compile(GOOD)
        func = prog.fresh_module().functions["f"]
        with pytest.raises(StageError) as info:
            pipe.allocate(func, "gra", 2)  # k < 3 is an allocator error
        err = info.value
        assert err.stage == "allocate"
        assert err.context.function == "f"
        assert err.context.allocator == "gra"
        assert err.context.k == 2
        assert "k=2" in err.context.describe()

    def test_execute_budget_becomes_stage_error(self):
        pipe = PassPipeline(PipelineConfig(max_cycles=10))
        prog = pipe.compile(GOOD)
        with pytest.raises(StageError) as info:
            pipe.execute(prog.reference_image())
        assert info.value.stage == "execute"

    def test_defaults_stamped_on_errors(self):
        pipe = PassPipeline(seed=17)
        prog = pipe.compile(GOOD)
        func = prog.fresh_module().functions["f"]
        with pytest.raises(StageError) as info:
            pipe.allocate(func, "gra", 2)
        assert info.value.context.seed == 17


class TestCheckOutput:
    def test_equal_outputs_pass(self):
        PassPipeline().check_output([1, 2.0], [1, 2.0])

    def test_nan_tolerant(self):
        nan = float("nan")
        PassPipeline().check_output([nan, 1], [nan, 1])

    def test_divergence_raises_miscompile(self):
        pipe = PassPipeline()
        with pytest.raises(MiscompileError) as info:
            pipe.check_output([1, 2, 9], [1, 2, 3], allocator="gra", k=3)
        err = info.value
        assert err.divergence_index == 2
        assert err.expected == [1, 2, 3]
        assert err.actual == [1, 2, 9]
        assert isinstance(err, StageError)  # one handler catches both
        assert "index 2" in err.render()

    def test_length_divergence(self):
        pipe = PassPipeline()
        with pytest.raises(MiscompileError) as info:
            pipe.check_output([1], [1, 2])
        assert info.value.divergence_index == 1
