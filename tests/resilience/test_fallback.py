"""The fallback ladder and its bookkeeping in harness and Table 1."""

import pytest

from repro.bench.harness import Harness, build_table1
from repro.bench.suite import program
from repro.resilience import faults
from repro.resilience.fallback import FallbackEvent, chain_for
from repro.resilience.faults import FaultSpec

BENCH = program("sieve")


class TestChain:
    def test_orders(self):
        assert chain_for("rap") == [
            "rap", "gra", "ssaspill", "linearscan", "spillall"
        ]
        assert chain_for("gra") == [
            "gra", "ssaspill", "linearscan", "spillall"
        ]
        assert chain_for("ssaspill") == ["ssaspill", "linearscan", "spillall"]
        assert chain_for("linearscan") == ["linearscan", "spillall"]
        assert chain_for("spillall") == ["spillall"]

    def test_unknown_allocator(self):
        with pytest.raises(ValueError):
            chain_for("magic")

    def test_event_rendering(self):
        event = FallbackEvent("rap", "validate", "boom")
        assert str(event) == "rap failed at validate: boom"
        assert event.as_dict() == {
            "allocator": "rap", "stage": "validate", "reason": "boom"
        }


class TestHarnessLadder:
    def test_healthy_run_records_nothing(self):
        harness = Harness([BENCH])
        run = harness.run(BENCH, "rap", 5)
        assert run.allocator_used == "rap"
        assert run.fallbacks_taken == []

    def test_two_rung_descent(self):
        # rap crashes AND gra's spill slots corrupt: the SSA
        # spill-then-color rung is the next intact one.
        with faults.injected(
            FaultSpec("rap.region.raise", times=None),
            FaultSpec("gra.spill.corrupt-slot", times=None),
        ):
            harness = Harness([BENCH])
            run = harness.run(BENCH, "rap", 3)
        assert run.allocator_used == "ssaspill"
        assert [e.allocator for e in run.fallbacks_taken] == ["rap", "gra"]
        assert run.stats.output == harness.reference_output(BENCH)

    def test_gra_knockout_lands_on_ssaspill(self):
        # The Chaitin baseline's spill slots corrupt; the miscompile is
        # caught pre-execution and the ladder descends one rung to the
        # SSA allocator.
        with faults.injected(FaultSpec("gra.spill.corrupt-slot", times=None)):
            harness = Harness([BENCH])
            run = harness.run(BENCH, "gra", 3)
        assert run.allocator_used == "ssaspill"
        assert [e.allocator for e in run.fallbacks_taken] == ["gra"]
        assert run.stats.output == harness.reference_output(BENCH)

    def test_ssaspill_knockout_lands_on_linearscan(self):
        # SSA renaming resolves a use to a shadowed definition; the
        # construction validator catches it pre-execution and the ladder
        # descends to linear scan.
        with faults.injected(FaultSpec("ssa.rename.stale-def", times=None)):
            harness = Harness([BENCH])
            run = harness.run(BENCH, "ssaspill", 3)
        assert run.allocator_used == "linearscan"
        assert [e.allocator for e in run.fallbacks_taken] == ["ssaspill"]
        assert run.stats.output == harness.reference_output(BENCH)

    def test_three_rung_descent(self):
        with faults.injected(
            FaultSpec("rap.region.raise", times=None),
            FaultSpec("gra.spill.corrupt-slot", times=None),
            FaultSpec("ssa.rename.stale-def", times=None),
        ):
            harness = Harness([BENCH])
            run = harness.run(BENCH, "rap", 3)
        assert run.allocator_used == "linearscan"
        assert [e.allocator for e in run.fallbacks_taken] == [
            "rap", "gra", "ssaspill"
        ]
        assert run.stats.output == harness.reference_output(BENCH)

    def test_requested_kwargs_not_inherited_by_fallback(self):
        # enable_motion is a RAP-only kwarg; after RAP is knocked out it
        # must not be forwarded to GRA (which would TypeError).
        with faults.injected(FaultSpec("rap.region.raise", times=None)):
            harness = Harness([BENCH])
            run = harness.run(BENCH, "rap", 5, enable_motion=False)
        assert run.allocator_used == "gra"


class TestTable1Degradation:
    def test_sweep_completes_with_fault_and_reports_cells(self):
        with faults.injected(FaultSpec("rap.region.raise", times=None)):
            harness = Harness([BENCH])
            table = build_table1(harness, k_values=(3,))
        degraded = table.degraded_cells()
        assert degraded, "fallback was taken but no cell reports it"
        routine, k, events = degraded[0]
        assert k == 3
        assert events[0].allocator == "rap"
        for row in table.cells.values():
            assert row[3].fallbacks

    def test_clean_sweep_reports_no_cells(self):
        harness = Harness([BENCH])
        table = build_table1(harness, k_values=(3,))
        assert table.degraded_cells() == []
