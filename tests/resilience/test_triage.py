"""Crash triage: probing, delta minimization, bundles, and replay."""

import json
import os

from repro.resilience.faults import FaultSpec
from repro.resilience.pipeline import PipelineConfig
from repro.resilience.triage import (
    Failure,
    load_bundle,
    make_bundle,
    minimize_source,
    probe_failure,
    replay_bundle,
    write_bundle,
)
from repro.testing.generator import random_source

GOOD = """
void main() { int i; i = 2; print(i + 3); }
"""

#: A scenario that deterministically miscompiles: the spill slots of every
#: GRA load are corrupted while the validator that would catch it is off,
#: so the corrupt loads read zeros and the output diverges.
MISCOMPILE_CFG = PipelineConfig(verify_spill_discipline=False)
MISCOMPILE_SPEC = FaultSpec("gra.spill.corrupt-slot", times=None)

SPILLY = """
int f(int a, int b, int c, int d) {
    int e; int g; int h;
    e = a * b; g = c * d; h = a * d;
    return e + g + h + a + b + c + d;
}
void main() { print(f(2, 3, 5, 7)); }
"""


class TestProbeFailure:
    def test_healthy_scenario(self):
        assert probe_failure(GOOD, "gra", 4) is None

    def test_invalid_source_is_not_a_failure(self):
        # A program that does not compile is an invalid witness.
        assert probe_failure("void main() { int ; }", "gra", 4) is None

    def test_crash_probe(self):
        failure = probe_failure(
            SPILLY, "rap", 3, inject=[FaultSpec("rap.region.raise")]
        )
        assert failure is not None
        assert failure.kind == "crash"
        assert failure.stage == "allocate"

    def test_miscompile_probe(self):
        failure = probe_failure(
            SPILLY, "gra", 3, config=MISCOMPILE_CFG, inject=[MISCOMPILE_SPEC]
        )
        assert failure is not None
        assert failure.kind == "miscompile"
        assert failure.expected != failure.actual
        assert failure.divergence_index == 0

    def test_injection_plan_is_per_probe(self):
        # A times=1 spec fires on *every* call, not only the first: each
        # probe gets a fresh plan (what minimization and replay rely on).
        spec = FaultSpec("rap.region.raise")
        for _ in range(2):
            failure = probe_failure(SPILLY, "rap", 3, inject=[spec])
            assert failure is not None and failure.kind == "crash"


class TestMinimize:
    def test_minimizes_to_signature(self):
        source = random_source(0, "small")
        failure = probe_failure(
            source, "gra", 3, config=MISCOMPILE_CFG, inject=[MISCOMPILE_SPEC]
        )
        assert failure is not None and failure.kind == "miscompile"

        def still_fails(candidate):
            observed = probe_failure(
                candidate, "gra", 3,
                config=MISCOMPILE_CFG, inject=[MISCOMPILE_SPEC],
            )
            return observed is not None and observed.matches(failure)

        minimized = minimize_source(source, still_fails)
        assert len(minimized.splitlines()) < len(source.splitlines())
        assert still_fails(minimized)

    def test_non_failing_input_returned_unchanged(self):
        assert minimize_source(GOOD, lambda s: False) == GOOD

    def test_budget_bounds_evaluations(self):
        calls = []

        def predicate(candidate):
            calls.append(1)
            return True

        minimize_source("a\n" * 64, predicate, budget=10)
        assert len(calls) <= 10


class TestBundles:
    def make(self, tmp_path):
        failure = probe_failure(
            SPILLY, "gra", 3, config=MISCOMPILE_CFG, inject=[MISCOMPILE_SPEC]
        )
        bundle = make_bundle(
            SPILLY, failure, "gra", 3, seed=7, size="small",
            config=MISCOMPILE_CFG, inject=[MISCOMPILE_SPEC],
        )
        return write_bundle(bundle, str(tmp_path))

    def test_bundle_layout(self, tmp_path):
        from repro.resilience.triage import failure_signature

        path = self.make(tmp_path)
        signature = failure_signature("miscompile", "compare", None)
        assert os.path.basename(path) == f"miscompile-gra-k3-{signature}"
        for name in ("repro.mc", "original.mc", "bundle.json", "README.md"):
            assert os.path.exists(os.path.join(path, name)), name
        with open(os.path.join(path, "bundle.json")) as handle:
            meta = json.load(handle)
        assert meta["kind"] == "miscompile"
        assert meta["replay"] == f"python -m repro replay {path}"
        assert meta["config"]["verify_spill_discipline"] is False
        assert meta["injected"][0]["point"] == "gra.spill.corrupt-slot"

    def test_roundtrip_and_replay(self, tmp_path):
        path = self.make(tmp_path)
        bundle = load_bundle(path)
        assert bundle.allocator == "gra" and bundle.k == 3

        result = replay_bundle(path)
        assert result.reproduced, result.describe()
        assert "reproduces" in result.describe()

    def test_fixed_bug_does_not_reproduce(self, tmp_path):
        path = self.make(tmp_path)
        # Simulate the fix: drop the recorded fault plan.
        meta_path = os.path.join(path, "bundle.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["injected"] = []
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        result = replay_bundle(path)
        assert not result.reproduced
        assert "does NOT reproduce" in result.describe()

    def test_signature_matching(self):
        a = Failure(kind="crash", stage="allocate", error="x")
        b = Failure(kind="crash", stage="allocate", error="entirely different")
        c = Failure(kind="miscompile", stage="compare", error="x")
        assert a.matches(b)
        assert not a.matches(c)
