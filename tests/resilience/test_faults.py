"""Each fault-injection probe is caught by validation (or, for the raise
probe, surfaces as an allocate-stage error), and the harness fallback
chain contains every one of them."""

import pytest

from repro.bench.harness import Harness
from repro.bench.suite import program
from repro.compiler import param_slots
from repro.interp.machine import FunctionImage, ProgramImage
from repro.resilience import faults
from repro.resilience.errors import StageError
from repro.resilience.faults import FaultInjected, FaultPlan, FaultSpec
from repro.resilience.pipeline import PassPipeline, PipelineConfig

BENCH = program("sieve")

#: probe point -> (allocator, k, stage expected to catch the corruption,
#: FaultSpec kwargs).  The k values are chosen so each probe actually
#: corrupts something on this benchmark (e.g. at k=3 the dropped GRA edge
#: happens not to change the coloring; the motion probe needs the k=4
#: hoist).  The stale-holder probe uses ``times=None`` because a single
#: skipped kill is only harmful when a later load of the same address
#: shares the window.
SCENARIOS = {
    "gra.interference.drop-edge": ("gra", 5, "validate", {}),
    "gra.spill.corrupt-slot": ("gra", 3, "validate", {}),
    "rap.region.drop-edge": ("rap", 3, "validate", {}),
    "rap.spill.corrupt-slot": ("rap", 3, "validate", {}),
    "rap.region.raise": ("rap", 3, "allocate", {}),
    "rap.motion.wrong-reg": ("rap", 4, "validate", {}),
    "rap.peephole.stale-holder": ("rap", 3, "validate", {"times": None}),
}


def allocate_all(allocator, k, config=None):
    pipe = PassPipeline(config)
    prog = pipe.compile(BENCH.source())
    module = prog.fresh_module()
    functions = {}
    for name, func in module.functions.items():
        result = pipe.allocate(func, allocator, k)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
    return ProgramImage(list(module.globals.values()), functions)


class TestProbeMechanics:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("gra.bogus")

    def test_probes_dormant_by_default(self):
        assert faults.active() is None
        allocate_all("gra", 3)  # no plan: identical to an uninstrumented run

    def test_times_and_skip(self):
        plan = FaultPlan([FaultSpec("rap.region.raise", times=2, skip=1)])
        fired = [plan.should_fire("rap.region.raise", "f") for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_function_pattern(self):
        plan = FaultPlan([FaultSpec("rap.region.raise", function="dg*")])
        assert not plan.should_fire("rap.region.raise", "main")
        assert plan.should_fire("rap.region.raise", "dgefa")

    def test_nested_plans_restore(self):
        with faults.injected(FaultSpec("rap.region.raise")) as outer:
            with faults.injected(FaultSpec("gra.spill.corrupt-slot")) as inner:
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is None


class TestCorruptionCaught:
    """Every probe's corruption is caught *structurally* — by the stage
    recorded in SCENARIOS — never first observed as wrong program output."""

    @pytest.mark.parametrize("point", sorted(SCENARIOS))
    def test_probe_caught_at_stage(self, point):
        allocator, k, stage, spec_kwargs = SCENARIOS[point]
        with faults.injected(FaultSpec(point, **spec_kwargs)) as plan:
            with pytest.raises(StageError) as info:
                allocate_all(allocator, k)
            assert plan.fired, f"probe {point} never fired"
        assert info.value.stage == stage

    def test_raise_probe_preserves_cause(self):
        with faults.injected(FaultSpec("rap.region.raise")):
            with pytest.raises(StageError) as info:
                allocate_all("rap", 3)
        assert isinstance(info.value.cause, FaultInjected)
        assert info.value.cause.point == "rap.region.raise"


class TestFallbackContainment:
    """With a probe armed, `Harness.run` still completes — on a simpler
    allocator — and records the degradation."""

    @pytest.mark.parametrize("point", sorted(SCENARIOS))
    def test_harness_contains_probe(self, point):
        allocator, k, stage, _ = SCENARIOS[point]
        # times=None: the probe fires on every attempt of the *same*
        # allocator, so the fallback rung is reached because the next
        # allocator has no such probe, not because the fault expired.
        with faults.injected(FaultSpec(point, times=None)):
            harness = Harness([BENCH])
            run = harness.run(BENCH, allocator, k)
        assert run.allocator == allocator
        assert run.allocator_used != allocator
        assert run.fallbacks_taken
        event = run.fallbacks_taken[0]
        assert event.allocator == allocator
        assert event.stage == stage
        # The degraded run still computes the right answer.
        assert run.stats.output == harness.reference_output(BENCH)

    def test_fallback_disabled_raises(self):
        with faults.injected(FaultSpec("rap.region.raise")):
            harness = Harness([BENCH], fallback=False)
            with pytest.raises(StageError):
                harness.run(BENCH, "rap", 3)


class TestSchedulerProbe:
    """The scheduler probe corrupts the optional *schedule* stage, which
    is allocator-independent — it is caught by the schedule validator,
    not contained by the allocator ladder (every rung would reschedule
    and re-trip the same probe)."""

    def test_swap_caught_at_schedule_stage(self):
        config = PipelineConfig(schedule=True)
        with faults.injected(FaultSpec("sched.reorder-dependent")) as plan:
            with pytest.raises(StageError) as info:
                allocate_all("gra", 3, config=config)
            assert plan.fired, "scheduler probe never fired"
        assert info.value.stage == "schedule"

    def test_schedule_stage_healthy_without_plan(self):
        # With no plan armed the schedule stage runs and verifies clean.
        allocate_all("gra", 3, config=PipelineConfig(schedule=True))
