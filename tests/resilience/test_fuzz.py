"""The differential fuzz driver."""

import io
import os

from repro.resilience.fuzz import run_fuzz
from repro.resilience.pipeline import PipelineConfig
from repro.resilience.faults import FaultSpec


class TestRunFuzz:
    def test_clean_sweep(self, tmp_path):
        stream = io.StringIO()
        report = run_fuzz(
            seeds=3, size="small", k_values=(3,), allocators=("gra",),
            out_dir=str(tmp_path), stream=stream, use_corpus=False,
        )
        assert report.ok
        assert report.scenarios == 3
        assert "3 seeds" in stream.getvalue()
        assert os.listdir(str(tmp_path)) == []  # no bundles written

    def test_injected_failures_are_bundled(self, tmp_path):
        stream = io.StringIO()
        report = run_fuzz(
            seeds=2, size="small", k_values=(3,), allocators=("gra",),
            out_dir=str(tmp_path), stream=stream, use_corpus=False,
            config=PipelineConfig(verify_spill_discipline=False),
            inject=[FaultSpec("gra.spill.corrupt-slot", times=None)],
            minimize=False,
        )
        assert not report.ok
        assert report.failures
        for failure in report.failures:
            assert failure.bundle_path is not None
            assert os.path.exists(
                os.path.join(failure.bundle_path, "bundle.json")
            )
        assert "FAIL seed=" in stream.getvalue()
