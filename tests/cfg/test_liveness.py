"""Tests for iterative CFG liveness."""

from repro.cfg.graph import CFG
from repro.cfg.liveness import compute_liveness
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg


def live(code):
    cfg = CFG(code)
    return cfg, compute_liveness(cfg)


class TestStraightline:
    def test_operand_live_before_use(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(1)),
            iloc.binary(Op.ADD, vreg(0), vreg(1), vreg(2)),
            Instr(Op.RET, srcs=[vreg(2)]),
        ]
        _, result = live(code)
        assert result.live_before(code[2]) == {vreg(0), vreg(1)}
        assert result.live_after(code[2]) == {vreg(2)}

    def test_dead_value_never_live(self):
        code = [
            iloc.loadi(1, vreg(0)),  # dead
            Instr(Op.RET),
        ]
        _, result = live(code)
        assert vreg(0) not in result.live_before(code[0])
        assert result.live_after(code[0]) == set()

    def test_redefinition_kills(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(0)),
            Instr(Op.RET, srcs=[vreg(0)]),
        ]
        _, result = live(code)
        assert vreg(0) not in result.live_before(code[1])


class TestBranching:
    def test_value_used_on_one_arm_is_live_at_branch(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(9, vreg(1)),
            iloc.cbr(vreg(0), "T", "F"),
            iloc.label("T"),
            Instr(Op.PRINT, srcs=[vreg(1)]),
            iloc.jmp("E"),
            iloc.label("F"),
            iloc.label("E"),
            Instr(Op.RET),
        ]
        _, result = live(code)
        assert vreg(1) in result.live_before(code[2])
        # live_after of the branch unions both arms.
        assert vreg(1) in result.live_after(code[2])

    def test_loop_carried_liveness(self):
        code = [
            iloc.loadi(0, vreg(0)),
            iloc.label("H"),
            iloc.loadi(10, vreg(1)),
            iloc.binary(Op.CMP_LT, vreg(0), vreg(1), vreg(2)),
            iloc.cbr(vreg(2), "B", "X"),
            iloc.label("B"),
            iloc.loadi(1, vreg(3)),
            iloc.binary(Op.ADD, vreg(0), vreg(3), vreg(0)),
            iloc.jmp("H"),
            iloc.label("X"),
            Instr(Op.RET, srcs=[vreg(0)]),
        ]
        cfg, result = live(code)
        # v0 is live around the whole loop, including at the back edge.
        assert vreg(0) in result.live_before(code[8])  # before jmp H
        header = cfg.block_at[1]
        assert vreg(0) in result.block_live_in[header.index]

    def test_block_live_sets_consistent_with_positions(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.cbr(vreg(0), "T", "T"),
            iloc.label("T"),
            Instr(Op.RET, srcs=[vreg(0)]),
        ]
        cfg, result = live(code)
        for block in cfg.blocks:
            if block.start < len(code):
                assert result.live_at[block.start] == result.block_live_in[block.index]

    def test_final_position_is_empty(self):
        code = [iloc.loadi(1, vreg(0)), Instr(Op.RET, srcs=[vreg(0)])]
        _, result = live(code)
        assert result.live_at[len(code)] == set()
