"""Tests for dominator analysis and natural-loop detection."""

from repro.cfg.dominators import DominatorTree, natural_loops
from repro.cfg.graph import CFG
from repro.compiler import compile_source
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg
from repro.pdg.linearize import linearize


def cfg_of(source, name="f"):
    func = compile_source(source).module.functions[name]
    return CFG(linearize(func).instrs)


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = cfg_of(
            "void f() { int x; if (1) { x = 1; } else { x = 2; } print(x); }"
        )
        dom = DominatorTree(cfg)
        entry = cfg.entry_block().index
        for block in cfg.blocks:
            if block in cfg.reverse_postorder():
                assert dom.dominates(entry, block.index)

    def test_branch_arms_do_not_dominate_join(self):
        cfg = cfg_of(
            "void f() { int x; if (1) { x = 1; } else { x = 2; } print(x); }"
        )
        dom = DominatorTree(cfg)
        join = cfg.blocks[-1]
        arms = [b for b in join.preds]
        assert len(arms) >= 2
        for arm in arms:
            assert not dom.dominates(arm.index, join.index) or arm is join

    def test_entry_has_no_idom(self):
        cfg = cfg_of("void f() { }")
        dom = DominatorTree(cfg)
        assert dom.idom[cfg.entry_block().index] is None

    def test_self_domination(self):
        cfg = cfg_of("void f() { print(1); }")
        dom = DominatorTree(cfg)
        assert dom.dominates(0, 0)


class TestNaturalLoops:
    def test_while_creates_one_loop(self):
        cfg = cfg_of("void f() { int i; i = 0; while (i < 3) { i = i + 1; } }")
        loops = natural_loops(cfg)
        assert len(loops) == 1
        header = loops[0]["header"]
        assert header in loops[0]["body"]

    def test_nested_loops_detected(self):
        cfg = cfg_of(
            """
            void f() {
                int i; int j;
                for (i = 0; i < 2; i = i + 1) {
                    for (j = 0; j < 2; j = j + 1) { print(j); }
                }
            }
            """
        )
        loops = natural_loops(cfg)
        assert len(loops) == 2
        bodies = sorted(loops, key=lambda l: len(l["body"]))
        assert set(bodies[0]["body"]) < set(bodies[1]["body"])

    def test_straightline_has_no_loops(self):
        cfg = cfg_of("void f() { print(1); }")
        assert natural_loops(cfg) == []
