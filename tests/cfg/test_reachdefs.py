"""Tests for single-register reaching definitions (ud/du chains)."""

from repro.cfg.graph import CFG
from repro.cfg.reachdefs import ENTRY_DEF, chains_for
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg


def chains(code, reg, is_param=False):
    return chains_for(CFG(code), reg, is_param=is_param)


class TestStraightline:
    def test_single_def_reaches_use(self):
        code = [
            iloc.loadi(1, vreg(0)),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            Instr(Op.RET),
        ]
        result = chains(code, vreg(0))
        assert result.defs_reaching(code[1]) == {code[0]}
        assert result.uses_reached_by(code[0]) == [code[1]]

    def test_redefinition_kills_earlier_def(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.loadi(2, vreg(0)),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            Instr(Op.RET),
        ]
        result = chains(code, vreg(0))
        assert result.defs_reaching(code[2]) == {code[1]}
        assert result.uses_reached_by(code[0]) == []

    def test_use_and_def_in_same_instruction(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.binary(Op.ADD, vreg(0), vreg(0), vreg(0)),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            Instr(Op.RET),
        ]
        result = chains(code, vreg(0))
        assert result.defs_reaching(code[1]) == {code[0]}
        assert result.defs_reaching(code[2]) == {code[1]}


class TestBranching:
    def test_both_arms_reach_join(self):
        code = [
            iloc.loadi(1, vreg(9)),
            iloc.cbr(vreg(9), "T", "F"),
            iloc.label("T"),
            iloc.loadi(1, vreg(0)),
            iloc.jmp("E"),
            iloc.label("F"),
            iloc.loadi(2, vreg(0)),
            iloc.label("E"),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            Instr(Op.RET),
        ]
        result = chains(code, vreg(0))
        assert result.defs_reaching(code[8]) == {code[3], code[6]}

    def test_loop_carried_def_reaches_header_use(self):
        code = [
            iloc.loadi(0, vreg(0)),
            iloc.label("H"),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            iloc.loadi(1, vreg(1)),
            iloc.binary(Op.ADD, vreg(0), vreg(1), vreg(0)),
            iloc.jmp("H"),
        ]
        result = chains(code, vreg(0))
        reaching = result.defs_reaching(code[2])
        assert code[0] in reaching and code[4] in reaching


class TestParams:
    def test_entry_def_reaches_first_use_of_param(self):
        code = [
            Instr(Op.PRINT, srcs=[vreg(0)]),
            Instr(Op.RET),
        ]
        result = chains(code, vreg(0), is_param=True)
        assert ENTRY_DEF in result.defs_reaching(code[0])
        assert id(code[0]) in result.entry_reaches_uses

    def test_entry_def_killed_by_explicit_def(self):
        code = [
            iloc.loadi(5, vreg(0)),
            Instr(Op.PRINT, srcs=[vreg(0)]),
            Instr(Op.RET),
        ]
        result = chains(code, vreg(0), is_param=True)
        assert result.defs_reaching(code[1]) == {code[0]}
