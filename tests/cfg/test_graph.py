"""Tests for CFG construction."""

from repro.cfg.graph import CFG
from repro.ir import iloc
from repro.ir.iloc import Instr, Op, vreg


def diamond():
    """if (v0) v1=1 else v1=2; ret v1"""
    return [
        iloc.loadi(1, vreg(0)),
        iloc.cbr(vreg(0), "T", "F"),
        iloc.label("T"),
        iloc.loadi(1, vreg(1)),
        iloc.jmp("E"),
        iloc.label("F"),
        iloc.loadi(2, vreg(1)),
        iloc.label("E"),
        Instr(Op.RET, srcs=[vreg(1)]),
    ]


def loop():
    return [
        iloc.loadi(0, vreg(0)),
        iloc.label("H"),
        iloc.loadi(10, vreg(1)),
        iloc.binary(Op.CMP_LT, vreg(0), vreg(1), vreg(2)),
        iloc.cbr(vreg(2), "B", "X"),
        iloc.label("B"),
        iloc.loadi(1, vreg(3)),
        iloc.binary(Op.ADD, vreg(0), vreg(3), vreg(0)),
        iloc.jmp("H"),
        iloc.label("X"),
        Instr(Op.RET),
    ]


class TestDiamond:
    def test_block_count(self):
        cfg = CFG(diamond())
        assert len(cfg.blocks) == 4

    def test_entry_has_two_successors(self):
        cfg = CFG(diamond())
        assert len(cfg.entry_block().succs) == 2

    def test_join_has_two_predecessors(self):
        cfg = CFG(diamond())
        join = cfg.blocks[-1]
        assert len(join.preds) == 2

    def test_ret_block_has_no_successors(self):
        cfg = CFG(diamond())
        assert cfg.blocks[-1].succs == []

    def test_every_position_belongs_to_one_block(self):
        cfg = CFG(diamond())
        for index, block in enumerate(cfg.block_at):
            assert block is not None
            assert block.start <= index < block.end


class TestLoop:
    def test_back_edge_present(self):
        cfg = CFG(loop())
        header = cfg.block_at[1]
        body = next(b for b in cfg.blocks if header in b.succs and b is not cfg.entry_block())
        assert body in header.preds or header in body.succs

    def test_header_has_two_preds(self):
        cfg = CFG(loop())
        header = cfg.block_at[1]
        assert len(header.preds) == 2  # entry fallthrough + back edge

    def test_reverse_postorder_starts_at_entry(self):
        cfg = CFG(loop())
        order = cfg.reverse_postorder()
        assert order[0] is cfg.entry_block()
        assert len(order) == len(cfg.blocks)

    def test_reverse_postorder_visits_reachable_once(self):
        cfg = CFG(diamond())
        order = cfg.reverse_postorder()
        assert len({b.index for b in order}) == len(order)


class TestEdgeCases:
    def test_straightline_single_block(self):
        code = [iloc.loadi(1, vreg(0)), Instr(Op.RET)]
        cfg = CFG(code)
        assert len(cfg.blocks) == 1

    def test_cbr_with_same_true_false_target_single_successor(self):
        code = [
            iloc.loadi(1, vreg(0)),
            iloc.cbr(vreg(0), "L", "L"),
            iloc.label("L"),
            Instr(Op.RET),
        ]
        cfg = CFG(code)
        assert len(cfg.entry_block().succs) == 1

    def test_unreachable_code_still_gets_blocks(self):
        code = [
            Instr(Op.RET),
            iloc.loadi(1, vreg(0)),  # unreachable
        ]
        cfg = CFG(code)
        assert len(cfg.blocks) == 2
        assert cfg.blocks[1] not in cfg.entry_block().succs
