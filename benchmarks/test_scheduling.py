"""Benchmarks for the scheduling substrate: the allocation/scheduling
phase-ordering tension that motivates the paper's shared-PDG design.

Two measurements per program:

* how much local list scheduling shortens static schedules of allocated
  code (stall slots filled with independent work);
* how much register *pressure* (small k) lengthens the best schedule the
  scheduler can find — fewer registers ⇒ more anti/output dependences ⇒
  less instruction-level parallelism.
"""

import pytest

from repro.bench.suite import program
from repro.sched import LatencyModel, schedule_code

MODEL = LatencyModel()
PROGRAMS = ("livermore", "linpack", "hsort")


def schedule_lengths(harness, bench_name, allocator, k):
    bench = program(bench_name)
    image, _ = harness.allocate_program(bench, allocator, k)
    before = after = 0
    for func_image in image.functions.values():
        _, report = schedule_code(list(func_image.code), MODEL)
        before += report.length_before
        after += report.length_after
    return before, after


@pytest.mark.parametrize("name", PROGRAMS)
@pytest.mark.parametrize("allocator", ["gra", "rap"])
def test_scheduling_gain(benchmark, harness, name, allocator):
    def measure():
        return schedule_lengths(harness, name, allocator, 4)

    before, after = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["static_length_unscheduled"] = before
    benchmark.extra_info["static_length_scheduled"] = after
    assert after <= before


@pytest.mark.parametrize("name", PROGRAMS)
def test_pressure_lengthens_schedules(benchmark, harness, name):
    def measure():
        tight = schedule_lengths(harness, name, "gra", 3)[1]
        roomy = schedule_lengths(harness, name, "gra", 16)[1]
        return tight, roomy

    tight, roomy = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["scheduled_length_k3"] = tight
    benchmark.extra_info["scheduled_length_k16"] = roomy
    assert tight >= roomy
