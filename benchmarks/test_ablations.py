"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation answers one question the paper raises:

1. **Peephole on/off** — how much of RAP's win is Figure 6's cleanup?
2. **Motion on/off** — how much does §3.2's loop hoisting contribute?
3. **Coalescing for both** — the paper's future-work prediction is that an
   explicit coalescing pass "particularly ... should improve the
   performance of GRA" while RAP already kills most copies itself.
4. **Region granularity** — §4 conjectures that larger regions would
   reduce RAP's excess spill code.
5. **Briggs optimistic vs Chaitin pessimistic coloring** — reference [9]'s
   guarantee: the optimistic allocator never spills more.
"""

import pytest

from repro.bench.suite import program

ABLATION_PROGRAMS = ("hsort", "sieve", "queens", "linpack")
K = 3


def total_cycles(harness, bench_name, allocator, k=K, **kwargs):
    run = harness.run(program(bench_name), allocator, k, **kwargs)
    return run.stats.total


@pytest.mark.parametrize("name", ABLATION_PROGRAMS)
def test_ablation_peephole(benchmark, harness, name):
    def measure():
        on = total_cycles(harness, name, "rap")
        off = total_cycles(harness, name, "rap", enable_peephole=False)
        return on, off

    on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["cycles_with_peephole"] = on.cycles
    benchmark.extra_info["cycles_without_peephole"] = off.cycles
    assert on.cycles <= off.cycles  # the peephole never hurts


@pytest.mark.parametrize("name", ABLATION_PROGRAMS)
def test_ablation_motion(benchmark, harness, name):
    def measure():
        on = total_cycles(harness, name, "rap")
        off = total_cycles(harness, name, "rap", enable_motion=False)
        return on, off

    on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["cycles_with_motion"] = on.cycles
    benchmark.extra_info["cycles_without_motion"] = off.cycles
    assert on.loads <= off.loads  # hoisting can only remove loop loads


@pytest.mark.parametrize("name", ABLATION_PROGRAMS)
def test_ablation_coalescing(benchmark, harness, name):
    def measure():
        plain_gra = total_cycles(harness, name, "gra", k=5)
        coal_gra = total_cycles(harness, name, "gra", k=5, pre_coalesce=True)
        plain_rap = total_cycles(harness, name, "rap", k=5)
        coal_rap = total_cycles(harness, name, "rap", k=5, pre_coalesce=True)
        return plain_gra, coal_gra, plain_rap, coal_rap

    plain_gra, coal_gra, plain_rap, coal_rap = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    benchmark.extra_info["gra_copies_plain"] = plain_gra.copies
    benchmark.extra_info["gra_copies_coalesced"] = coal_gra.copies
    benchmark.extra_info["rap_copies_plain"] = plain_rap.copies
    benchmark.extra_info["rap_copies_coalesced"] = coal_rap.copies
    # The paper's prediction: coalescing helps GRA's copy counts at least
    # as much as RAP's (RAP already eliminates most copies by coloring).
    gra_gain = plain_gra.copies - coal_gra.copies
    rap_gain = plain_rap.copies - coal_rap.copies
    assert gra_gain >= rap_gain


@pytest.mark.parametrize("name", ("hsort", "queens"))
def test_ablation_region_granularity(benchmark, name):
    """Compare pdgcc-style one-statement regions against merged regions."""
    from repro.bench.harness import Harness
    from repro.bench.suite import program as lookup
    from repro.compiler import compile_source

    bench = lookup(name)

    def measure():
        results = {}
        for granularity in ("statement", "merged"):
            harness = Harness()
            harness._compiled[bench.name] = compile_source(
                bench.source(), granularity=granularity
            )
            run = harness.run(bench, "rap", K)
            results[granularity] = run.stats.total
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["cycles_statement_regions"] = results["statement"].cycles
    benchmark.extra_info["cycles_merged_regions"] = results["merged"].cycles
    # Both must at least be valid allocations (the harness asserted
    # output equality); record which granularity won.
    benchmark.extra_info["merged_wins"] = (
        results["merged"].cycles <= results["statement"].cycles
    )


@pytest.mark.parametrize("name", ABLATION_PROGRAMS)
def test_ablation_global_peephole(benchmark, harness, name):
    """Figure 6's peephole per basic block vs the whole-CFG availability
    pass (the "move spill code out of any subregion" future work)."""

    def measure():
        local = total_cycles(harness, name, "rap")
        globl = total_cycles(harness, name, "rap", global_peephole=True)
        return local, globl

    local, globl = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["loads_local_peephole"] = local.loads
    benchmark.extra_info["loads_global_peephole"] = globl.loads
    assert globl.loads <= local.loads


@pytest.mark.parametrize("name", ABLATION_PROGRAMS)
def test_ablation_rematerialization(benchmark, harness, name):
    """The paper's other excluded extension (reference [11]): recomputing
    constant-valued spill victims instead of storing/loading them."""

    def measure():
        plain_gra = total_cycles(harness, name, "gra")
        remat_gra = total_cycles(harness, name, "gra", remat=True)
        plain_rap = total_cycles(harness, name, "rap")
        remat_rap = total_cycles(harness, name, "rap", remat=True)
        return plain_gra, remat_gra, plain_rap, remat_rap

    plain_gra, remat_gra, plain_rap, remat_rap = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    benchmark.extra_info["gra_loads_plain"] = plain_gra.loads
    benchmark.extra_info["gra_loads_remat"] = remat_gra.loads
    benchmark.extra_info["rap_loads_plain"] = plain_rap.loads
    benchmark.extra_info["rap_loads_remat"] = remat_rap.loads
    # Rematerialization can only remove spill memory traffic.
    assert remat_gra.loads <= plain_gra.loads


@pytest.mark.parametrize("name", ABLATION_PROGRAMS)
def test_ablation_loop_weighted_costs(benchmark, harness, name):
    """Classic Chaitin 10^depth spill-cost weighting vs the paper's plain
    whole-procedure reference counts (§4 describes GRA as counting "each
    use and definition of a variable in the whole procedure")."""

    def measure():
        plain = total_cycles(harness, name, "gra")
        weighted = total_cycles(harness, name, "gra", loop_weight=True)
        return plain, weighted

    plain, weighted = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["cycles_plain_costs"] = plain.cycles
    benchmark.extra_info["cycles_loop_weighted"] = weighted.cycles
    # Both are valid allocations; record which heuristic won.
    benchmark.extra_info["weighted_wins"] = weighted.cycles <= plain.cycles


@pytest.mark.parametrize("name", ABLATION_PROGRAMS)
def test_ablation_briggs_vs_chaitin(benchmark, harness, name):
    def measure():
        briggs = total_cycles(harness, name, "gra")
        chaitin = total_cycles(harness, name, "gra", optimistic=False)
        return briggs, chaitin

    briggs, chaitin = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["cycles_briggs"] = briggs.cycles
    benchmark.extra_info["cycles_chaitin"] = chaitin.cycles
    # Optimistic coloring spills a subset of what pessimistic coloring
    # spills, so it never executes more spill memory traffic.
    assert briggs.loads + briggs.stores <= chaitin.loads + chaitin.stores
