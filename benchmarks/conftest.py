"""Shared fixtures for the benchmark harness.

The benchmarks regenerate the paper's evaluation artifacts (Table 1 and
the figure-level demonstrations).  Compilation is cached per session so
the suite spends its time in allocation and interpretation, which is what
is being measured.
"""

import pytest

from repro.bench.harness import Harness


@pytest.fixture(scope="session")
def harness():
    return Harness()


def routine_cells(run_gra, run_rap, bench):
    """Per-routine Table-1 cells for one (program, k) measurement pair."""
    from repro.bench.harness import _make_cell

    cells = {}
    for routine in bench.routines:
        gra = run_gra.routine(bench, routine)
        rap = run_rap.routine(bench, routine)
        cells[routine] = _make_cell(gra, rap)
    return cells
