"""Regenerates the paper's Table 1 (the only table in the evaluation).

One benchmark per (program, k): the measured body compiles is cached, so
the timing covers allocation by both allocators plus the counted
interpreter runs — the same work the paper's experimental apparatus did.
The Table-1 percentages for every routine row land in
``benchmark.extra_info`` so a benchmark run doubles as a results dump:

    pytest benchmarks/test_table1.py --benchmark-only

Shape assertions (not absolute numbers — our substrate is a reimplemented
interpreter, not the authors' iloc toolchain):

* RAP-allocated code never executes *more copy statements* than GRA code
  (§4 attributes RAP's win largely to first-fit copy elimination);
* outputs always match the reference execution (asserted inside the
  harness on every run);
* the per-k suite-wide average percentage decrease is positive for large
  k, reproducing the paper's bottom row staying positive.
"""

import pytest

from repro.bench.harness import DEFAULT_K_VALUES, _make_cell
from repro.bench.suite import PROGRAMS, program

from conftest import routine_cells

K_VALUES = DEFAULT_K_VALUES


def measure(harness, bench, k):
    run_gra = harness.run(bench, "gra", k)
    run_rap = harness.run(bench, "rap", k)
    return run_gra, run_rap


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("bench", PROGRAMS, ids=lambda b: b.name)
def test_table1_program(benchmark, harness, bench, k):
    run_gra, run_rap = benchmark.pedantic(
        measure, args=(harness, bench, k), rounds=1, iterations=1
    )
    cells = routine_cells(run_gra, run_rap, bench)
    benchmark.extra_info["k"] = k
    for routine, cell in cells.items():
        benchmark.extra_info[routine] = {
            "tot": None if cell.tot is None else round(cell.tot, 2),
            "ld": None if cell.ld is None else round(cell.ld, 2),
            "st": None if cell.st is None else round(cell.st, 2),
            "blank": cell.blank,
        }
    # Shape: with enough registers that spilling is rare, RAP's first-fit
    # copy elimination dominates and it never executes more copies than
    # GRA.  At small k this need not hold — RAP's pattern-2 peephole
    # *converts* redundant loads into copies, and the paper itself found
    # "routines in which GRA allocated code contained fewer copy
    # statements than RAP" (§4).
    if k >= 7:
        assert run_rap.stats.total.copies <= run_gra.stats.total.copies


def test_table1_overall_shape(benchmark, harness):
    """The headline: positive suite-wide average gain (paper: 2.7%).

    Measured over the fast half of the suite at k=5 and k=9 to keep the
    assertion cheap; the full-table run is the per-program benches above
    plus ``python -m repro.bench.table1``.
    """
    fast = [program(n) for n in ("hanoi", "perm", "queens", "sieve", "hsort")]

    def measure_all():
        gains = []
        for bench in fast:
            for k in (5, 9):
                run_gra, run_rap = measure(harness, bench, k)
                g = run_gra.stats.total.cycles
                r = run_rap.stats.total.cycles
                gains.append(100.0 * (g - r) / g)
        return gains

    gains = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    average = sum(gains) / len(gains)
    benchmark.extra_info["average_gain_percent"] = round(average, 2)
    assert average > 0.0, f"RAP should win on average, got {average:.2f}%"
