"""Compile-time benchmarks: how fast are the allocators themselves?

The paper notes (contrasting with Proebsting/Fischer) that compile time
matters for allocator design.  These are genuine multi-round
pytest-benchmark timings of allocation alone (no interpretation), on a
representative mid-size function.
"""

import pytest

from repro.bench.suite import program
from repro.compiler import compile_source
from repro.regalloc import allocate_gra, allocate_rap


@pytest.fixture(scope="module")
def compiled_hsort():
    bench = program("hsort")
    return compile_source(bench.source())


@pytest.mark.parametrize("k", [3, 8])
def test_speed_gra(benchmark, compiled_hsort, k):
    def allocate():
        module = compiled_hsort.fresh_module()
        return [allocate_gra(f, k) for f in module.functions.values()]

    results = benchmark(allocate)
    assert all(r.code for r in results)


@pytest.mark.parametrize("k", [3, 8])
def test_speed_rap(benchmark, compiled_hsort, k):
    def allocate():
        module = compiled_hsort.fresh_module()
        return [allocate_rap(f, k) for f in module.functions.values()]

    results = benchmark(allocate)
    assert all(r.code for r in results)


def test_speed_frontend(benchmark):
    bench = program("livermore")
    source = bench.source()
    benchmark(lambda: compile_source(source))
