"""Regenerates the paper's figure-level artifacts.

The evaluation section has one table; the figures are worked examples of
the machinery.  Each benchmark here reconstructs a figure's scenario and
records the measurable facts it illustrates.
"""

import pytest

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.iloc import Op
from repro.pdg.dot import to_dot
from repro.pdg.nodes import Region
from repro.regalloc.rap import allocate_rap
from repro.regalloc.rap.peephole import eliminate_redundant_mem_ops

FIGURE1_SOURCE = """
void f() {
    int i; int j;
    i = 1;
    while (i < 10) {
        j = i + 1;
        if (j == 7) { print(1); } else { print(2); }
        i = i + 1;
    }
    print(i);
}
"""


def test_figure1_pdg(benchmark):
    """Figure 1: the PDG of the running example (regions R1..R5)."""

    def build():
        func = compile_source(FIGURE1_SOURCE).module.functions["f"]
        return func, to_dot(func, include_data_deps=True)

    func, dot = benchmark.pedantic(build, rounds=1, iterations=1)
    regions = list(func.walk_regions())
    loops = [r for r in regions if r.is_loop]
    benchmark.extra_info["region_count"] = len(regions)
    benchmark.extra_info["loop_regions"] = len(loops)
    benchmark.extra_info["dot_bytes"] = len(dot)
    assert len(loops) == 1
    assert "diamond" in dot  # predicate nodes rendered


def test_figure2_rap_loop(benchmark, harness):
    """Figure 2: the per-region while(spill) loop, measured as the number
    of spill rounds RAP needs on a pressured program at k=3."""
    from repro.bench.suite import program

    def measure():
        image, _ = harness.allocate_program(program("hsort"), "rap", 3)
        return image

    benchmark.pedantic(measure, rounds=1, iterations=1)


def test_figure3_interference_shape(benchmark):
    """Figure 3: build the paper's worked region graph and record its
    shape (the detailed structural assertions live in
    tests/regalloc_rap/test_figure3.py)."""
    import sys, os

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
    from regalloc_rap.test_figure3 import allocate_subregions, build_figure3

    def measure():
        func, r1, r2, r3 = build_figure3()
        ctx = allocate_subregions(func, r1)
        return ctx, r2, r3

    ctx, r2, r3 = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["r2_nodes"] = len(ctx.sub_graphs[id(r2)].nodes)
    benchmark.extra_info["r3_nodes"] = len(ctx.sub_graphs[id(r3)].nodes)
    assert len(ctx.sub_graphs[id(r2)].nodes) <= 3
    assert len(ctx.sub_graphs[id(r3)].nodes) <= 3


def test_figure6_peephole_patterns(benchmark):
    """Figure 6: how often each pattern family fires on a spill-heavy
    allocation (sieve at k=3, with phase 3 run standalone)."""
    from repro.bench.suite import program

    bench = program("sieve")
    prog = compile_source(bench.source())

    def measure():
        module = prog.fresh_module()
        reports = []
        for func in module.functions.values():
            result = allocate_rap(func, 3, enable_peephole=False)
            _, report = eliminate_redundant_mem_ops(result.code)
            reports.append(report)
        return reports

    reports = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["loads_deleted"] = sum(r.loads_deleted for r in reports)
    benchmark.extra_info["loads_to_copies"] = sum(
        r.loads_to_copies for r in reports
    )
    benchmark.extra_info["stores_deleted"] = sum(
        r.stores_deleted for r in reports
    )


def test_figure7_small_region_spill_overhead(benchmark):
    """Figure 7: spilling across one-statement regions inserts one load
    per use region; motion recovers the loop case."""
    source = """
    void main() {
        int a; int i; int s;
        int p; int q; int r; int t; int u;
        a = 7; p = 1; q = 2; r = 3; t = 4; u = 5;
        print(p + q + r + t + u);
        print(p - q); print(r + t - u);
        s = 0;
        for (i = 0; i < 10; i = i + 1) { s = s + a; s = s - a; }
        print(s); print(a);
    }
    """

    def measure():
        prog = compile_source(source)
        reference = run_program(prog.reference_image())
        module = prog.fresh_module()
        result = allocate_rap(module.functions["main"], 4)
        image = ProgramImage(
            list(module.globals.values()),
            {"main": FunctionImage("main", result.code, [])},
        )
        stats = run_program(image)
        assert stats.output == reference.output
        return result

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["hoisted_slots"] = len(result.motion.hoisted_slots)
    benchmark.extra_info["interior_spill_ops_deleted"] = (
        result.motion.deleted_instrs
    )
    assert result.motion.hoisted_slots
